//! The listener behaviour model.
//!
//! Closes the simulation loop: given a commuter's ground-truth tastes
//! and a played item, decide what the human would do — listen through,
//! like, skip, or give up and change channel. The paper's stated goal
//! ("decreasing their propensity to channel-surf") becomes measurable:
//! run the same morning with and without personalization and compare
//! skip/surf counts (experiments E4, E9).

use crate::population::Commuter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What the simulated listener did with one item.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ListeningOutcome {
    /// Heard it to the end and pressed like.
    LikedIt,
    /// Heard it to the end.
    ListenedThrough,
    /// Skipped after hearing `fraction` of it.
    Skipped {
        /// Fraction heard before skipping, in `(0, 1)`.
        fraction: f64,
    },
    /// Frustration boiled over: changed channel.
    Surfed,
}

impl ListeningOutcome {
    /// True for outcomes where the listener stayed to the end.
    #[must_use]
    pub fn finished(self) -> bool {
        matches!(self, ListeningOutcome::LikedIt | ListeningOutcome::ListenedThrough)
    }
}

/// The behaviour model.
#[derive(Debug, Clone)]
pub struct ListenerModel {
    /// Taste above which the listener likes explicitly.
    pub like_threshold: f64,
    /// Taste below which the listener skips.
    pub skip_threshold: f64,
    /// Consecutive skips after which the listener surfs away.
    pub surf_after_skips: u32,
    consecutive_skips: u32,
    rng: StdRng,
}

impl ListenerModel {
    /// Creates a model with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ListenerModel {
            like_threshold: 0.6,
            skip_threshold: -0.05,
            surf_after_skips: 3,
            consecutive_skips: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Consecutive skips so far.
    #[must_use]
    pub fn frustration(&self) -> u32 {
        self.consecutive_skips
    }

    /// Simulates the commuter hearing an item of category `category`.
    pub fn outcome(&mut self, commuter: &Commuter, category: u16) -> ListeningOutcome {
        let taste = commuter.taste(category);
        // Small idiosyncratic wobble so behaviour is not a step function.
        let effective = taste + self.rng.gen_range(-0.15..0.15);
        if effective < self.skip_threshold {
            self.consecutive_skips += 1;
            if self.consecutive_skips >= self.surf_after_skips {
                self.consecutive_skips = 0;
                return ListeningOutcome::Surfed;
            }
            return ListeningOutcome::Skipped { fraction: self.rng.gen_range(0.05..0.4) };
        }
        self.consecutive_skips = 0;
        if effective > self.like_threshold {
            ListeningOutcome::LikedIt
        } else {
            ListeningOutcome::ListenedThrough
        }
    }

    /// Resets frustration (new session).
    pub fn reset(&mut self) {
        self.consecutive_skips = 0;
    }
}

/// Aggregate behaviour metrics over a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Items played.
    pub items: u32,
    /// Items heard to the end.
    pub finished: u32,
    /// Skips.
    pub skips: u32,
    /// Explicit likes.
    pub likes: u32,
    /// Channel surfs.
    pub surfs: u32,
}

impl SessionMetrics {
    /// Records one outcome.
    pub fn record(&mut self, outcome: ListeningOutcome) {
        self.items += 1;
        match outcome {
            ListeningOutcome::LikedIt => {
                self.finished += 1;
                self.likes += 1;
            }
            ListeningOutcome::ListenedThrough => self.finished += 1,
            ListeningOutcome::Skipped { .. } => self.skips += 1,
            ListeningOutcome::Surfed => self.surfs += 1,
        }
    }

    /// Skip rate (skips + surfs over items), in `[0, 1]`.
    #[must_use]
    pub fn skip_rate(&self) -> f64 {
        if self.items == 0 {
            return 0.0;
        }
        f64::from(self.skips + self.surfs) / f64::from(self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_catalog::ServiceIndex;
    use pphcr_geo::NodeId;

    fn commuter_with_tastes(tastes: Vec<f64>) -> Commuter {
        Commuter {
            index: 0,
            home: NodeId(0),
            work: NodeId(1),
            departure_out_s: 8 * 3_600,
            departure_back_s: 18 * 3_600,
            service: ServiceIndex(0),
            tastes,
        }
    }

    #[test]
    fn loved_content_is_finished_and_often_liked() {
        let mut tastes = vec![0.0; 30];
        tastes[8] = 0.95;
        let c = commuter_with_tastes(tastes);
        let mut model = ListenerModel::new(1);
        let mut metrics = SessionMetrics::default();
        for _ in 0..50 {
            metrics.record(model.outcome(&c, 8));
        }
        assert!(metrics.finished >= 48, "{metrics:?}");
        assert!(metrics.likes > 20, "{metrics:?}");
        assert_eq!(metrics.surfs, 0);
    }

    #[test]
    fn hated_content_is_skipped_and_surfed() {
        let mut tastes = vec![0.0; 30];
        tastes[5] = -0.9;
        let c = commuter_with_tastes(tastes);
        let mut model = ListenerModel::new(2);
        let mut metrics = SessionMetrics::default();
        for _ in 0..30 {
            metrics.record(model.outcome(&c, 5));
        }
        assert!(metrics.skip_rate() > 0.9, "{metrics:?}");
        assert!(metrics.surfs > 0, "every third skip surfs: {metrics:?}");
    }

    #[test]
    fn surf_fires_after_consecutive_skips() {
        let mut tastes = vec![0.0; 30];
        tastes[5] = -1.0;
        tastes[8] = 1.0;
        let c = commuter_with_tastes(tastes);
        let mut model = ListenerModel::new(3);
        let a = model.outcome(&c, 5);
        let b = model.outcome(&c, 5);
        assert!(matches!(a, ListeningOutcome::Skipped { .. }));
        assert!(matches!(b, ListeningOutcome::Skipped { .. }));
        let third = model.outcome(&c, 5);
        assert_eq!(third, ListeningOutcome::Surfed);
        // A good item in between resets frustration.
        model.outcome(&c, 5);
        model.outcome(&c, 8);
        assert_eq!(model.frustration(), 0);
    }

    #[test]
    fn metrics_aggregate_correctly() {
        let mut m = SessionMetrics::default();
        m.record(ListeningOutcome::LikedIt);
        m.record(ListeningOutcome::Skipped { fraction: 0.2 });
        m.record(ListeningOutcome::ListenedThrough);
        m.record(ListeningOutcome::Surfed);
        assert_eq!(m.items, 4);
        assert_eq!(m.finished, 2);
        assert_eq!(m.likes, 1);
        assert_eq!(m.skips, 1);
        assert_eq!(m.surfs, 1);
        assert!((m.skip_rate() - 0.5).abs() < 1e-12);
        assert_eq!(SessionMetrics::default().skip_rate(), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut tastes = vec![0.0; 30];
        tastes[2] = 0.3;
        let c = commuter_with_tastes(tastes);
        let seq = |seed| {
            let mut m = ListenerModel::new(seed);
            (0..20).map(|_| m.outcome(&c, 2)).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
    }
}
