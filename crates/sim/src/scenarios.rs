//! Scenario suites for the process-based bench harness (`pphcr-bench`).
//!
//! Each scenario drives one engine through a workload and records every
//! operation's wall-clock latency, in microseconds, into an obs
//! [`Histogram`] — the log2-bucket form the harness can merge exactly
//! across agent processes before extracting p50/p95/p99 upper bounds.
//!
//! Two suites:
//!
//! * **Suite A** (deterministic): baseline single-user tick latency,
//!   batched fan-out over a registered fleet, and archive-scale
//!   retrieval through the production dispatch path.
//! * **Suite B** (stochastic): seeded Poisson feedback/GPS arrival
//!   streams applied under a [`ChaosProfile`] — calm and lossy-mobile —
//!   so the tails cover a faulted [`FaultyTransport`](pphcr_core) wire,
//!   not just the happy path.
//!
//! Operation *counts* are a pure function of the [`ScenarioSpec`]: the
//! Poisson schedule is drawn from a seeded splitmix64 stream, so a
//! same-seed rerun reproduces identical histogram totals (the recorded
//! latencies differ — that is the noise the harness is measuring).

use crate::chaos::ChaosProfile;
use crate::experiments::{e13_archive_world, e13_driver_count, e13_scale_fleet};
use pphcr_catalog::{CategoryId, CATEGORY_COUNT};
use pphcr_core::{EngineConfig, TickRequest};
use pphcr_geo::{GeoPoint, TimePoint, TimeSpan};
use pphcr_obs::Histogram;
use pphcr_recommender::{CandidateFilter, ListenerContext, ScoringWeights};
use pphcr_trajectory::GpsFix;
use pphcr_userdata::{FeedbackEvent, FeedbackKind, UserId};
use std::fmt;

/// The E13 city anchor the fleet builders grow their commutes from.
const ORIGIN: GeoPoint = GeoPoint { lat: 45.0703, lon: 7.6869 };

/// Every tunable of a suite run. The defaults are the full-scale
/// shape; CI smoke runs shrink them through the `bench_agent`
/// environment overrides.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Fleet size for the fan-out and Poisson scenarios.
    pub users: u64,
    /// Archive size for the retrieval scenario, clips.
    pub clips: usize,
    /// Ticks per deterministic tick scenario.
    pub ticks: u64,
    /// Full-fleet retrieval passes in the archive scenario.
    pub retrieval_passes: u64,
    /// Poisson arrivals per stochastic scenario.
    pub arrivals: u64,
    /// Poisson arrival rate, events per simulated second.
    pub rate_hz: f64,
    /// Worker threads for batched ticks.
    pub workers: usize,
    /// Seed for every stochastic draw.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            users: 200,
            clips: 2_000,
            ticks: 50,
            retrieval_passes: 3,
            arrivals: 500,
            rate_hz: 8.0,
            workers: 2,
            seed: 42,
        }
    }
}

/// One scenario's outcome: how many operations ran, how long the whole
/// scenario took, and the per-operation latency histogram (µs).
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// `"A"` or `"B"`.
    pub suite: &'static str,
    /// Scenario name, stable across runs (it keys the harness merge).
    pub name: &'static str,
    /// Operations recorded (equals `hist.count()`).
    pub ops: u64,
    /// Scenario wall time, seconds.
    pub elapsed_s: f64,
    /// Per-operation latency, microseconds.
    pub hist: Histogram,
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "suite {} {:<22} ops={:>7} elapsed={:>7.3}s p50<={:?}us p99<={:?}us",
            self.suite,
            self.name,
            self.ops,
            self.elapsed_s,
            self.hist.quantile_upper_bound(0.50),
            self.hist.quantile_upper_bound(0.99),
        )
    }
}

/// Runs both suites in order. This is what `bench_agent` executes.
#[must_use]
pub fn run_suites(spec: &ScenarioSpec) -> Vec<ScenarioReport> {
    let mut reports = suite_a(spec);
    reports.extend(suite_b(spec));
    reports
}

/// Suite A: the deterministic latency scenarios.
#[must_use]
pub fn suite_a(spec: &ScenarioSpec) -> Vec<ScenarioReport> {
    vec![baseline_tick(spec), fan_out(spec), archive_retrieval(spec)]
}

/// Suite B: seeded Poisson arrivals under each chaos profile.
#[must_use]
pub fn suite_b(spec: &ScenarioSpec) -> Vec<ScenarioReport> {
    vec![
        poisson_chaos(spec, &ChaosProfile::calm(), "poisson_calm"),
        poisson_chaos(spec, &ChaosProfile::lossy_mobile(), "poisson_lossy_mobile"),
    ]
}

/// Home/bearing of driver `u`, matching `e13_scale_fleet`'s layout so
/// replayed fixes continue the learned commute instead of teleporting.
fn driver_route(u: u64) -> (GeoPoint, f64) {
    let home = ORIGIN.destination(30.0 * u as f64, 1_000.0 + 37.0 * u as f64);
    let bearing = 80.0 + (u % 24) as f64 * 15.0;
    (home, bearing)
}

/// A1 — the floor every other number rests on: one driver, one tick at
/// a time, per-tick latency.
fn baseline_tick(spec: &ScenarioSpec) -> ScenarioReport {
    let mut engine = e13_scale_fleet(1, EngineConfig::default());
    let user = UserId(1);
    let (home, bearing) = driver_route(1);
    let d3 = TimePoint::at(3, 8, 0, 0);
    let mut hist = Histogram::default();
    let total = crate::timing::stopwatch();
    for i in 0..spec.ticks {
        let now = d3.advance(TimeSpan::seconds(i * 30));
        let frac = (i as f64 / 39.0).min(1.0);
        engine.record_fix(user, GpsFix::new(home.destination(bearing, frac * 9_000.0), now, 7.5));
        let t = crate::timing::stopwatch();
        let _ = engine.run_tick(&TickRequest::single(&user, now));
        hist.record(t.elapsed_ns() / 1_000);
    }
    report("A", "baseline_tick", total.elapsed_s(), hist)
}

/// A2 — fan-out: the same window batched over the whole fleet, one
/// latency sample per batch tick.
fn fan_out(spec: &ScenarioSpec) -> ScenarioReport {
    let users = spec.users.max(1);
    let mut engine = e13_scale_fleet(users, EngineConfig::default());
    let ids: Vec<UserId> = (1..=users).map(UserId).collect();
    let drivers = e13_driver_count(users);
    let d3 = TimePoint::at(3, 8, 0, 0);
    let mut hist = Histogram::default();
    let total = crate::timing::stopwatch();
    for i in 0..spec.ticks {
        let now = d3.advance(TimeSpan::seconds(i * 30));
        for u in 1..=drivers {
            let (home, bearing) = driver_route(u);
            let frac = (i as f64 / 39.0).min(1.0);
            engine.record_fix(
                UserId(u),
                GpsFix::new(home.destination(bearing, frac * 9_000.0), now, 7.5),
            );
        }
        let request = TickRequest::batch(&ids, now).with_workers(spec.workers);
        let t = crate::timing::stopwatch();
        let _ = engine.run_tick(&request);
        hist.record(t.elapsed_ns() / 1_000);
    }
    report("A", "fan_out", total.elapsed_s(), hist)
}

/// A3 — archive-scale retrieval through the production dispatch path
/// (`candidates_indexed`, including its `scan_below` fallback): one
/// latency sample per listener request.
fn archive_retrieval(spec: &ScenarioSpec) -> ScenarioReport {
    let listeners = usize::try_from(spec.users.max(1)).unwrap_or(usize::MAX).min(200);
    let world = e13_archive_world(spec.clips, listeners, spec.seed);
    let filter = CandidateFilter::default();
    let weights = ScoringWeights::default();
    let jobs: Vec<_> = world
        .population
        .commuters
        .iter()
        .map(|c| {
            let prefs = world.feedback.preferences(UserId(c.index), world.now);
            let ctx = crate::experiments::morning_drive_context(&world, c)
                .unwrap_or_else(|| ListenerContext::stationary(world.now));
            (prefs, ctx)
        })
        .collect();
    let mut hist = Histogram::default();
    let total = crate::timing::stopwatch();
    for _ in 0..spec.retrieval_passes.max(1) {
        for (prefs, ctx) in &jobs {
            let t = crate::timing::stopwatch();
            let shortlist = filter.candidates_indexed(&world.repo, prefs, ctx, &weights);
            hist.record(t.elapsed_ns() / 1_000);
            std::hint::black_box(shortlist);
        }
    }
    report("A", "archive_retrieval", total.elapsed_s(), hist)
}

/// B — a seeded Poisson stream of feedback and GPS arrivals, with a
/// single-user tick every 32nd arrival, all under `profile`'s faulted
/// wire. Arrival count, users touched and event kinds are functions of
/// the seed alone, so the histogram totals reproduce exactly.
fn poisson_chaos(
    spec: &ScenarioSpec,
    profile: &ChaosProfile,
    name: &'static str,
) -> ScenarioReport {
    let users = spec.users.max(1);
    let mut engine = e13_scale_fleet(users, EngineConfig::default());
    profile.apply(&mut engine, spec.seed);
    let mut rng = spec.seed ^ 0x5DEE_CE66_D152_5A5B;
    let rate = if spec.rate_hz > 0.0 { spec.rate_hz } else { 1.0 };
    let start = TimePoint::at(3, 8, 0, 0);
    let mut offset_s = 0.0f64;
    let mut hist = Histogram::default();
    let total = crate::timing::stopwatch();
    for k in 0..spec.arrivals {
        // Exponential inter-arrival: -ln(U)/λ with U ∈ (0, 1].
        let u = 1.0 - (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
        offset_s += -u.ln() / rate;
        let now = start.advance(TimeSpan::seconds(offset_s as u64));
        let who = UserId(1 + splitmix64(&mut rng) % users);
        let t = crate::timing::stopwatch();
        if splitmix64(&mut rng).is_multiple_of(3) {
            let category =
                CategoryId::new((splitmix64(&mut rng) % u64::from(CATEGORY_COUNT)) as u16);
            let kind = if splitmix64(&mut rng).is_multiple_of(2) {
                FeedbackKind::Like
            } else {
                FeedbackKind::Dislike
            };
            engine.record_feedback(FeedbackEvent {
                user: who,
                clip: None,
                category,
                kind,
                time: now,
            });
        } else {
            let bearing = (splitmix64(&mut rng) % 360) as f64;
            let dist = 200.0 + (splitmix64(&mut rng) % 8_000) as f64;
            engine.record_fix(who, GpsFix::new(ORIGIN.destination(bearing, dist), now, 7.5));
        }
        hist.record(t.elapsed_ns() / 1_000);
        if k % 32 == 31 {
            let t = crate::timing::stopwatch();
            let _ = engine.run_tick(&TickRequest::single(&who, now));
            hist.record(t.elapsed_ns() / 1_000);
        }
    }
    report("B", name, total.elapsed_s(), hist)
}

fn report(
    suite: &'static str,
    name: &'static str,
    elapsed_s: f64,
    hist: Histogram,
) -> ScenarioReport {
    ScenarioReport { suite, name, ops: hist.count(), elapsed_s, hist }
}

/// The splitmix64 step: the workspace's stock seeded generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioSpec {
        ScenarioSpec {
            users: 6,
            clips: 300,
            ticks: 4,
            retrieval_passes: 1,
            arrivals: 48,
            rate_hz: 8.0,
            workers: 2,
            seed: 7,
        }
    }

    #[test]
    fn suite_a_reports_are_consistent() {
        for r in suite_a(&tiny()) {
            assert_eq!(r.suite, "A");
            assert_eq!(r.ops, r.hist.count(), "{r}");
            assert!(r.ops > 0 && r.elapsed_s >= 0.0, "{r}");
            let (p50, p99) = (
                r.hist.quantile_upper_bound(0.50).unwrap(),
                r.hist.quantile_upper_bound(0.99).unwrap(),
            );
            assert!(p50 <= p99, "{r}");
        }
    }

    #[test]
    fn suite_b_counts_reproduce_for_the_same_seed() {
        let spec = tiny();
        let first = suite_b(&spec);
        let again = suite_b(&spec);
        assert_eq!(first.len(), 2);
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ops, b.ops, "same seed must replay the same schedule: {a}");
            assert_eq!(a.hist.count(), b.hist.count());
        }
        // A tick fires every 32nd arrival, on top of one op per arrival.
        let expected = spec.arrivals + spec.arrivals / 32;
        assert_eq!(first[0].ops, expected);
        assert_eq!(first[1].ops, expected, "chaos must not change how many ops run");
    }

    #[test]
    fn run_suites_concatenates_both() {
        let all = run_suites(&tiny());
        assert_eq!(all.len(), 5);
        assert_eq!(all.iter().filter(|r| r.suite == "A").count(), 3);
        assert_eq!(all.iter().filter(|r| r.suite == "B").count(), 2);
    }
}
