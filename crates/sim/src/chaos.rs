//! Chaos profiles for the simulated platform.
//!
//! The chaos suite and experiment E12 run the same scenarios as the
//! clean experiments, but over a deliberately hostile network. A
//! [`ChaosProfile`] bundles everything that can go wrong end to end:
//! the bus wire (drop/duplicate/reorder/delay, per-topic bandwidth
//! caps) and the unicast clip-fetch link (failures, latency, timeout).
//! Applying a profile to an [`Engine`] is one call, and every fault is
//! drawn from seeded generators, so a chaos run is exactly as
//! reproducible as a calm one.

use pphcr_core::{Engine, FaultProfile, FaultyTransport, UnicastLink};
use pphcr_geo::TimeSpan;

/// An end-to-end fault configuration: wire faults plus unicast-link
/// behaviour.
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Human-readable name, printed in experiment tables.
    pub name: &'static str,
    /// Faults applied to the bus wire.
    pub wire: FaultProfile,
    /// Unicast fetch failure probability.
    pub fetch_failure_rate: f64,
    /// Mean unicast fetch latency.
    pub fetch_latency: TimeSpan,
    /// Unicast fetch timeout.
    pub fetch_timeout: TimeSpan,
}

impl ChaosProfile {
    /// No faults anywhere: the calm baseline. An engine with this
    /// profile applied behaves byte-identically to an untouched one.
    #[must_use]
    pub fn calm() -> Self {
        ChaosProfile {
            name: "calm",
            wire: FaultProfile::none(),
            fetch_failure_rate: 0.0,
            fetch_latency: TimeSpan::ZERO,
            fetch_timeout: TimeSpan::seconds(10),
        }
    }

    /// The reference hostile profile: a lossy cellular link (20 % loss,
    /// 10 % duplication, heavy reordering and delay) plus an unreliable
    /// unicast fetch path.
    #[must_use]
    pub fn lossy_mobile() -> Self {
        ChaosProfile {
            name: "lossy-mobile",
            wire: FaultProfile::lossy_mobile(),
            fetch_failure_rate: 0.25,
            fetch_latency: TimeSpan::seconds(4),
            fetch_timeout: TimeSpan::seconds(10),
        }
    }

    /// True when no fault of any kind is enabled.
    #[must_use]
    pub fn is_calm(&self) -> bool {
        self.wire.is_perfect() && self.fetch_failure_rate <= 0.0 && self.fetch_latency.is_zero()
    }

    /// Wires an engine for this profile: swaps the bus wire for a
    /// seeded [`FaultyTransport`] and the clip-fetch link for a flaky
    /// [`UnicastLink`]. A calm profile leaves the engine on the perfect
    /// transport so behaviour stays bit-identical to the default.
    pub fn apply(&self, engine: &mut Engine, seed: u64) {
        if self.is_calm() {
            return;
        }
        engine.bus.set_transport(Box::new(FaultyTransport::new(self.wire.clone(), seed)));
        if self.fetch_failure_rate > 0.0 || !self.fetch_latency.is_zero() {
            engine.unicast = UnicastLink::flaky(
                self.fetch_failure_rate,
                self.fetch_latency,
                self.fetch_timeout,
                seed ^ 0x00C0_FFEE,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_core::EngineConfig;

    #[test]
    fn calm_profile_is_calm() {
        assert!(ChaosProfile::calm().is_calm());
        assert!(!ChaosProfile::lossy_mobile().is_calm());
    }

    #[test]
    fn apply_calm_keeps_perfect_links() {
        let mut e = Engine::new(EngineConfig::default());
        ChaosProfile::calm().apply(&mut e, 1);
        assert!(e.unicast.is_perfect());
        assert_eq!(e.bus.wire_stats(), pphcr_core::WireStats::default());
    }

    #[test]
    fn apply_lossy_swaps_links() {
        let mut e = Engine::new(EngineConfig::default());
        ChaosProfile::lossy_mobile().apply(&mut e, 1);
        assert!(!e.unicast.is_perfect());
    }
}
