//! Synthetic world and experiment harness for PPHCR.
//!
//! The paper's evaluation ran on proprietary assets: Rai's live
//! streams and podcast corpus, real listeners and their GPS traces.
//! Per the substitution rules in `DESIGN.md`, this crate generates
//! controlled equivalents:
//!
//! * [`world`] — a synthetic city: grid road network with intersections
//!   and roundabouts, homes, workplaces and landmarks,
//! * [`population`] — commuters with ground-truth tastes and repeatable
//!   home↔work mobility (noisy GPS fixes included),
//! * [`corpus`] — a 30-category text corpus with per-category
//!   vocabularies (Zipf-ish frequencies) and daily podcast batches,
//! * [`listener`] — the listener behaviour model: how a simulated
//!   person with tastes reacts to played content (listen, like, skip,
//!   channel-surf),
//! * [`experiments`] — the harness the benches call: each function
//!   reproduces one experiment of `DESIGN.md` and returns printable
//!   rows,
//! * [`chaos`] — seeded end-to-end fault profiles (lossy wire, flaky
//!   unicast) for the chaos suite and experiment E12,
//! * [`crash`] — the crash-recovery sweep: kill the platform at every
//!   WAL boundary, restore, and diff against the uninterrupted run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod corpus;
pub mod crash;
pub mod experiments;
pub mod listener;
pub mod population;
pub mod scenarios;
pub mod timing;
pub mod world;

pub use chaos::ChaosProfile;
pub use corpus::CorpusGenerator;
pub use crash::{kill_point_sweep, SweepReport};
pub use listener::{ListenerModel, ListeningOutcome};
pub use population::{Commuter, Population};
pub use world::SyntheticCity;
