//! Regression for the small-fleet worker pessimization: requesting 8
//! workers for a 24-commuter window used to spawn 8 threads for ~3
//! jobs each, and the spawn/join overhead made the 8-worker row ~0.65x
//! of the 1-worker row. `Engine::warm_users` now clamps the effective
//! worker count by populated shards and a jobs-per-worker floor, so a
//! tiny fleet runs inline regardless of the requested width and the
//! two rows must cost the same.
//!
//! Ignored by default (wall-clock sensitive); CI's perf-smoke job runs
//! it with `--ignored`, and locally:
//! `cargo test -p pphcr-sim --release -- --ignored tiny_fleet`.

use pphcr_sim::experiments::e13_tick_scaling;

#[test]
#[ignore = "wall-clock regression check; run via CI perf-smoke or --ignored"]
fn tiny_fleet_pays_nothing_for_a_wide_worker_request() {
    let rows = e13_tick_scaling(24, &[1, 8], 3);
    assert_eq!(rows.len(), 2);
    let (one, eight) = (&rows[0], &rows[1]);
    assert_eq!((one.users, one.workers), (24, 1));
    assert_eq!((eight.users, eight.workers), (24, 8));
    // Same fleet, same window: the event stream must not depend on the
    // requested width (payload byte-identity is pinned by the engine's
    // `tiny_fleet_events_are_identical_across_requested_worker_counts`).
    assert_eq!(one.events, eight.events, "{one} vs {eight}");
    assert!(one.events > 0, "{one}");
    // The acceptance floor: the 8-worker row must stay within 0.9x of
    // the 1-worker throughput (it used to be 0.65x). With the clamp
    // both rows execute the identical inline path, so the margin is
    // pure scheduler noise; min-of-3 post-warmup damps that, and a
    // small absolute slack keeps sub-100ms windows from faking a ratio.
    assert!(
        eight.seconds <= one.seconds / 0.9 + 0.02,
        "8-worker window {:.3}s regressed past 0.9x of the 1-worker window {:.3}s",
        eight.seconds,
        one.seconds
    );
}
