//! Population-scale determinism sweep. `e13_tick_grid` panics
//! internally if the event stream or the `ObsSnapshot` JSON differs
//! across worker counts, so driving it through a 10k-user fleet under
//! feedback/GPS churn IS the byte-identity proof; the assertions here
//! pin the cache-survival and liveness floors on top.
//!
//! Ignored by default (~20 s of wall time on a laptop); CI's
//! perf-smoke job runs it with `--ignored`, and locally:
//! `cargo test -p pphcr-sim --release -- --ignored ten_thousand`.

use pphcr_sim::experiments::e13_tick_grid;

#[test]
#[ignore = "population-scale sweep; run via CI perf-smoke or --ignored"]
fn ten_thousand_user_sweep_is_byte_identical_across_worker_counts() {
    let rows = e13_tick_grid(&[10_000], &[1, 2, 8], 50);
    assert_eq!(rows.len(), 3, "one row per worker count");
    for row in &rows {
        assert_eq!(row.users, 10_000);
        assert!(row.events > 0, "window must produce events at {} workers", row.workers);
        assert!(
            row.cross_tick_hits >= 1,
            "component-wise keys must keep ranked lists alive across ticks at {} workers; \
             the old now-keyed cache pinned this at zero",
            row.workers
        );
        assert!(
            row.cache_misses > 0 && row.warm_serves > 0,
            "warm phase must both miss (recompute) and serve at {} workers",
            row.workers
        );
    }
    let (base, rest) = rows.split_first().expect("non-empty");
    for row in rest {
        assert_eq!(
            (row.events, row.cache_misses, row.warm_serves, row.cross_tick_hits),
            (base.events, base.cache_misses, base.warm_serves, base.cross_tick_hits),
            "cache counters must not depend on the worker count"
        );
    }
}
