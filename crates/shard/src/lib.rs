//! # pphcr-shard — multi-process sharded deployment
//!
//! Runs N engine processes ("shard agents"), each owning the
//! `splitmix64(user) % N` partition of the listeners, behind a router
//! that speaks the unified [`EngineCommand`](pphcr_core::EngineCommand)
//! API. The deployment is *observationally identical* to a single
//! process: the merged event stream and the merged observability
//! snapshot are byte-for-byte what one engine fed the same commands
//! would produce. That identity is what makes sharding safe to roll
//! out — and it is pinned by a differential test, not argued.
//!
//! * [`protocol`] — the stdin/stdout wire protocol between router and
//!   agent. Frames reuse the WAL format (`[len][crc32][seq|kind|body]`)
//!   and commands travel as WAL payload bytes through the *same* codec
//!   the durability layer uses, so a forwarded command is literally a
//!   WAL record in flight.
//! * [`agent`] — the shard server: a
//!   [`DurableEngine`](pphcr_core::DurableEngine) behind a
//!   read-dispatch-respond loop. Also supports snapshot export and
//!   restore, which is how shard state migrates between processes.
//! * [`router`] — command routing (`target_user` → owning shard,
//!   broadcast otherwise), tick fan-out with per-shard user sub-lists,
//!   event re-interleaving into request order, observability merging
//!   via [`pphcr_obs::merge`], and snapshot-handoff rebalancing.
//! * [`workload`] — the deterministic differential workload and the
//!   single-process baseline runner.
//!
//! The paper's platform (§2.1) is a pipeline of queue-connected
//! services; this crate is the reproduction's answer to "what if the
//! personalization stage itself must scale out".

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agent;
pub mod protocol;
pub mod router;
pub mod workload;

pub use agent::{serve, AgentState};
pub use protocol::{read_frame, write_frame, ProtoError, Request, Response};
pub use router::{InProcessShard, ProcessShard, Router, ShardError, ShardTransport};
pub use workload::{commands, run_single, run_single_windowed, tick_heavy, SingleRun};
