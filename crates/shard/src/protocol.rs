//! The router ⇄ agent wire protocol.
//!
//! Frames reuse the WAL's format exactly: `[len: u32 LE][crc: u32 LE]`
//! followed by `payload = [seq: u64][kind: u8][body]`, CRC32 over the
//! whole payload. WAL record kinds stop below 200; protocol control
//! kinds start at 200, so a protocol frame can never be mistaken for a
//! logged operation. Commands travel *as WAL payload bytes* — encoded
//! and decoded by [`pphcr_core::persist`]'s single codec — which is
//! what guarantees a forwarded command means exactly what the same
//! bytes mean in a durability log.
//!
//! Every decode path returns a typed [`ProtoError`]; hostile bytes
//! never panic an agent.

use pphcr_core::persist::{
    crc32, decode_payload, encode_payload, ByteReader, ByteWriter, PersistError,
};
use pphcr_core::{EngineCommand, WalRecord};
use pphcr_obs::{DecisionTraceEntry, HistogramSnapshot, ObsSnapshot, Verdict};
use std::fmt;
use std::io::{Read, Write};

/// Router → agent: forward a command for application.
pub const KIND_APPLY: u8 = 200;
/// Router → agent: capture and ship the observability snapshot.
pub const KIND_OBS_REQUEST: u8 = 201;
/// Router → agent: export a full engine snapshot (rebalance donor).
pub const KIND_SNAPSHOT_REQUEST: u8 = 202;
/// Router → agent: restore engine state from a snapshot (recipient).
pub const KIND_RESTORE: u8 = 203;
/// Agent → router: outcome of one applied command.
pub const KIND_APPLIED: u8 = 210;
/// Agent → router: the observability snapshot.
pub const KIND_OBS: u8 = 211;
/// Agent → router: exported snapshot bytes.
pub const KIND_SNAPSHOT: u8 = 212;
/// Agent → router: restore completed.
pub const KIND_RESTORED: u8 = 213;
/// Agent → router: the agent could not honour the request.
pub const KIND_FAULT: u8 = 214;

/// Frames larger than this are rejected before allocation — a corrupt
/// length prefix must not trigger a gigabyte `Vec`.
const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Typed failures of the wire protocol.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying pipe failed (or closed mid-frame).
    Io(std::io::Error),
    /// A frame failed its CRC or length validation.
    BadFrame,
    /// The payload passed its CRC but does not decode.
    Decode(PersistError),
    /// A frame carried a kind the receiver does not understand.
    UnknownKind(u8),
    /// The peer answered with the wrong response kind.
    UnexpectedResponse(u8),
    /// The peer reported a fault.
    Fault(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "pipe I/O failure: {e}"),
            ProtoError::BadFrame => write!(f, "frame failed length/CRC validation"),
            ProtoError::Decode(e) => write!(f, "payload does not decode: {e}"),
            ProtoError::UnknownKind(k) => write!(f, "unknown protocol kind {k}"),
            ProtoError::UnexpectedResponse(k) => write!(f, "unexpected response kind {k}"),
            ProtoError::Fault(msg) => write!(f, "peer fault: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<PersistError> for ProtoError {
    fn from(e: PersistError) -> Self {
        ProtoError::Decode(e)
    }
}

/// Writes one `[len][crc][seq|kind|body]` frame and flushes.
///
/// # Errors
/// [`ProtoError::Io`] when the pipe fails.
pub fn write_frame(
    out: &mut impl Write,
    seq: u64,
    kind: u8,
    body: &[u8],
) -> Result<(), ProtoError> {
    let mut payload = ByteWriter::new();
    payload.put_u64(seq);
    payload.put_u8(kind);
    payload.put_bytes(body);
    let payload = payload.into_inner();
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(&crc32(&payload).to_le_bytes())?;
    out.write_all(&payload)?;
    out.flush()?;
    Ok(())
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
/// [`ProtoError::Io`] on a torn read, [`ProtoError::BadFrame`] on a
/// CRC mismatch or an over-long length prefix.
pub fn read_frame(input: &mut impl Read) -> Result<Option<(u64, u8, Vec<u8>)>, ProtoError> {
    let mut header = [0u8; 8];
    match input.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(ProtoError::Io(e)),
    }
    let mut hr = ByteReader::new(&header);
    let len = hr.u32().map_err(|_| ProtoError::BadFrame)? as usize;
    let crc = hr.u32().map_err(|_| ProtoError::BadFrame)?;
    if len < 9 || len > MAX_FRAME {
        return Err(ProtoError::BadFrame);
    }
    let mut payload = vec![0u8; len];
    input.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(ProtoError::BadFrame);
    }
    let mut r = ByteReader::new(&payload);
    let seq = r.u64().map_err(|_| ProtoError::BadFrame)?;
    let kind = r.u8().map_err(|_| ProtoError::BadFrame)?;
    let body = r.take(r.remaining()).map_err(|_| ProtoError::BadFrame)?.to_vec();
    Ok(Some((seq, kind, body)))
}

/// One event as it crosses the wire: the owning user (the router's
/// interleave key) and the event's stable debug rendering (the
/// identity artefact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEvent {
    /// Raw id of the listener the event concerns.
    pub user: u64,
    /// `format!("{event:?}")` of the engine event.
    pub line: String,
}

/// Router → agent requests.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply one engine command.
    Apply(EngineCommand),
    /// Capture and return the observability snapshot.
    Obs,
    /// Export the full engine snapshot (rebalance donor side).
    Snapshot,
    /// Replace engine state from snapshot bytes (recipient side).
    Restore(Vec<u8>),
}

/// Agent → router responses.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Outcome of an [`Request::Apply`].
    Applied {
        /// Display form of the engine rejection, when the command was
        /// rejected (a recorded outcome, same as in the WAL).
        error: Option<String>,
        /// Events the command produced, in engine emission order.
        events: Vec<WireEvent>,
    },
    /// The shard's observability snapshot.
    Obs(ObsSnapshot),
    /// Exported engine snapshot bytes.
    Snapshot(Vec<u8>),
    /// Restore completed.
    Restored,
    /// The agent could not honour the request.
    Fault(String),
}

impl Request {
    /// Encodes the request into `(kind, body)` for framing.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Apply(cmd) => {
                (KIND_APPLY, encode_payload(&WalRecord { seq: 0, op: cmd.clone() }))
            }
            Request::Obs => (KIND_OBS_REQUEST, Vec::new()),
            Request::Snapshot => (KIND_SNAPSHOT_REQUEST, Vec::new()),
            Request::Restore(bytes) => (KIND_RESTORE, bytes.clone()),
        }
    }

    /// Decodes a request from a received `(kind, body)` pair.
    ///
    /// # Errors
    /// [`ProtoError::UnknownKind`] / [`ProtoError::Decode`] on
    /// unrecognised or undecodable frames.
    pub fn decode(kind: u8, body: &[u8]) -> Result<Self, ProtoError> {
        match kind {
            KIND_APPLY => Ok(Request::Apply(decode_payload(body)?.op)),
            KIND_OBS_REQUEST => Ok(Request::Obs),
            KIND_SNAPSHOT_REQUEST => Ok(Request::Snapshot),
            KIND_RESTORE => Ok(Request::Restore(body.to_vec())),
            other => Err(ProtoError::UnknownKind(other)),
        }
    }
}

impl Response {
    /// Encodes the response into `(kind, body)` for framing.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Response::Applied { error, events } => {
                let mut w = ByteWriter::new();
                w.put_opt(error.as_ref(), |w, e| w.put_str(e));
                w.put_u32(events.len() as u32);
                for e in events {
                    w.put_u64(e.user);
                    w.put_str(&e.line);
                }
                (KIND_APPLIED, w.into_inner())
            }
            Response::Obs(snap) => {
                let mut w = ByteWriter::new();
                put_obs_snapshot(&mut w, snap);
                (KIND_OBS, w.into_inner())
            }
            Response::Snapshot(bytes) => (KIND_SNAPSHOT, bytes.clone()),
            Response::Restored => (KIND_RESTORED, Vec::new()),
            Response::Fault(msg) => {
                let mut w = ByteWriter::new();
                w.put_str(msg);
                (KIND_FAULT, w.into_inner())
            }
        }
    }

    /// Decodes a response from a received `(kind, body)` pair.
    ///
    /// # Errors
    /// [`ProtoError::UnknownKind`] / [`ProtoError::Decode`] on
    /// unrecognised or undecodable frames.
    pub fn decode(kind: u8, body: &[u8]) -> Result<Self, ProtoError> {
        match kind {
            KIND_APPLIED => {
                let mut r = ByteReader::new(body);
                let error = r.opt(ByteReader::string)?;
                let n = r.seq_len()?;
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(WireEvent { user: r.u64()?, line: r.string()? });
                }
                Ok(Response::Applied { error, events })
            }
            KIND_OBS => {
                let mut r = ByteReader::new(body);
                Ok(Response::Obs(get_obs_snapshot(&mut r)?))
            }
            KIND_SNAPSHOT => Ok(Response::Snapshot(body.to_vec())),
            KIND_RESTORED => Ok(Response::Restored),
            KIND_FAULT => {
                let mut r = ByteReader::new(body);
                Ok(Response::Fault(r.string()?))
            }
            other => Err(ProtoError::UnknownKind(other)),
        }
    }
}

/// Binary encoding of a full [`ObsSnapshot`] — exact integers only, so
/// the router's merge works on the same numbers the shard held.
fn put_obs_snapshot(w: &mut ByteWriter, snap: &ObsSnapshot) {
    w.put_u32(snap.counters.len() as u32);
    for (name, v) in &snap.counters {
        w.put_str(name);
        w.put_u64(*v);
    }
    w.put_u32(snap.gauges.len() as u32);
    for (name, v) in &snap.gauges {
        w.put_str(name);
        w.put_i64(*v);
    }
    w.put_u32(snap.histograms.len() as u32);
    for (name, h) in &snap.histograms {
        w.put_str(name);
        w.put_u64(h.count);
        w.put_u64(h.sum);
        w.put_u32(h.buckets.len() as u32);
        for (idx, c) in &h.buckets {
            w.put_u32(*idx as u32);
            w.put_u64(*c);
        }
    }
    w.put_u64(snap.trace_capacity);
    w.put_u64(snap.trace_dropped);
    w.put_u32(snap.trace.len() as u32);
    for e in &snap.trace {
        put_trace_entry(w, e);
    }
}

fn get_obs_snapshot(r: &mut ByteReader<'_>) -> Result<ObsSnapshot, PersistError> {
    let n = r.seq_len()?;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        counters.push((r.string()?, r.u64()?));
    }
    let n = r.seq_len()?;
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        gauges.push((r.string()?, r.i64()?));
    }
    let n = r.seq_len()?;
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.string()?;
        let count = r.u64()?;
        let sum = r.u64()?;
        let b = r.seq_len()?;
        let mut buckets = Vec::with_capacity(b);
        for _ in 0..b {
            buckets.push((r.u32()? as usize, r.u64()?));
        }
        histograms.push((name, HistogramSnapshot { count, sum, buckets }));
    }
    let trace_capacity = r.u64()?;
    let trace_dropped = r.u64()?;
    let n = r.seq_len()?;
    let mut trace = Vec::with_capacity(n);
    for _ in 0..n {
        trace.push(get_trace_entry(r)?);
    }
    Ok(ObsSnapshot { counters, gauges, histograms, trace_capacity, trace_dropped, trace })
}

fn put_trace_entry(w: &mut ByteWriter, e: &DecisionTraceEntry) {
    w.put_u64(e.user);
    w.put_u64(e.at_s);
    w.put_str(e.trigger);
    w.put_u64(e.considered);
    w.put_u64(e.cut_freshness);
    w.put_u64(e.cut_preference);
    w.put_u64(e.cut_geo);
    w.put_u64(e.cut_heard);
    w.put_u64(e.scored);
    w.put_u64(e.scheduled);
    w.put_opt(e.top_clip.as_ref(), |w, c| w.put_u64(*c));
    w.put_i64(e.top_content_micro);
    w.put_i64(e.top_context_micro);
    w.put_i64(e.top_total_micro);
    w.put_str(e.verdict.as_str());
}

fn get_trace_entry(r: &mut ByteReader<'_>) -> Result<DecisionTraceEntry, PersistError> {
    Ok(DecisionTraceEntry {
        user: r.u64()?,
        at_s: r.u64()?,
        trigger: intern_trigger(&r.string()?)?,
        considered: r.u64()?,
        cut_freshness: r.u64()?,
        cut_preference: r.u64()?,
        cut_geo: r.u64()?,
        cut_heard: r.u64()?,
        scored: r.u64()?,
        scheduled: r.u64()?,
        top_clip: r.opt(ByteReader::u64)?,
        top_content_micro: r.i64()?,
        top_context_micro: r.i64()?,
        top_total_micro: r.i64()?,
        verdict: match r.string()?.as_str() {
            "scheduled" => Verdict::Scheduled,
            "no-candidates" => Verdict::NoCandidates,
            "empty-schedule" => Verdict::EmptySchedule,
            _ => return Err(PersistError::Corrupt { what: "trace verdict" }),
        },
    })
}

/// Trace triggers are `&'static str` in [`DecisionTraceEntry`]; the
/// wire carries them by value, so decoding maps back onto the closed
/// set of trigger names the engine emits.
fn intern_trigger(s: &str) -> Result<&'static str, PersistError> {
    match s {
        "trip-started" => Ok("trip-started"),
        "schedule-underrun" => Ok("schedule-underrun"),
        _ => Err(PersistError::Corrupt { what: "trace trigger" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_geo::TimePoint;
    use pphcr_userdata::UserId;

    #[test]
    fn frames_round_trip_through_a_pipe_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, KIND_OBS_REQUEST, &[]).unwrap();
        write_frame(&mut buf, 8, KIND_RESTORE, b"snapshot bytes").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (seq, kind, body) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((seq, kind, body.as_slice()), (7, KIND_OBS_REQUEST, &[][..]));
        let (seq, kind, body) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((seq, kind, body.as_slice()), (8, KIND_RESTORE, &b"snapshot bytes"[..]));
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, KIND_OBS_REQUEST, &[]).unwrap();
        // Flip a payload byte: CRC must catch it.
        if let Some(b) = buf.last_mut() {
            *b ^= 0xFF;
        }
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(ProtoError::BadFrame)));
        // A torn header is clean EOF; a torn payload is an I/O error.
        let mut cursor = std::io::Cursor::new(vec![1, 2, 3]);
        assert!(matches!(read_frame(&mut cursor), Ok(None)));
        let mut torn = Vec::new();
        write_frame(&mut torn, 2, KIND_RESTORE, b"snapshot bytes").unwrap();
        torn.truncate(12); // header + 4 of the 23 payload bytes
        let mut cursor = std::io::Cursor::new(torn);
        assert!(matches!(read_frame(&mut cursor), Err(ProtoError::Io(_))));
    }

    #[test]
    fn commands_round_trip_as_wal_payloads() {
        let req = Request::Apply(EngineCommand::Skip {
            user: UserId(3),
            now: TimePoint::at(0, 9, 30, 0),
        });
        let (kind, body) = req.encode();
        assert_eq!(kind, KIND_APPLY);
        assert_eq!(Request::decode(kind, &body).unwrap(), req);
        let (kind, body) = Request::Snapshot.encode();
        assert_eq!(Request::decode(kind, &body).unwrap(), Request::Snapshot);
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response::Applied {
            error: Some("unknown user 404".into()),
            events: vec![
                WireEvent { user: 1, line: "Recommended { .. }".into() },
                WireEvent { user: 2, line: "TripPredicted { .. }".into() },
            ],
        };
        let (kind, body) = resp.encode();
        assert_eq!(Response::decode(kind, &body).unwrap(), resp);
        let (kind, body) = Response::Fault("broken".into()).encode();
        assert_eq!(Response::decode(kind, &body).unwrap(), Response::Fault("broken".into()));
    }

    #[test]
    fn obs_snapshots_round_trip_exactly() {
        use pphcr_obs::{DecisionTrace, Registry};
        let mut reg = Registry::new();
        reg.add("engine.ticks", 12);
        reg.gauge("health.healthy", 3);
        reg.observe("schedule.items", 4);
        let mut trace = DecisionTrace::with_capacity(16);
        trace.push(DecisionTraceEntry {
            user: 9,
            at_s: 32_400,
            trigger: "trip-started",
            considered: 10,
            cut_freshness: 1,
            cut_preference: 2,
            cut_geo: 3,
            cut_heard: 0,
            scored: 4,
            scheduled: 2,
            top_clip: Some(5),
            top_content_micro: 700_000,
            top_context_micro: -1,
            top_total_micro: 699_999,
            verdict: Verdict::Scheduled,
        });
        let snap = ObsSnapshot::capture(&reg, &trace);
        let resp = Response::Obs(snap.clone());
        let (kind, body) = resp.encode();
        match Response::decode(kind, &body).unwrap() {
            Response::Obs(decoded) => {
                assert_eq!(decoded, snap);
                assert_eq!(decoded.to_json(), snap.to_json());
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn unknown_trigger_is_a_decode_error() {
        assert!(intern_trigger("made-up").is_err());
    }
}
