//! The shard router: one [`EngineCommand`] API over N shard agents.
//!
//! Routing is the partition function the engine already exports:
//! [`user_shard`]`(user, n)` names the owning shard of a user-targeted
//! command; commands with no target user (catalog ingest, classifier
//! training, environment configuration, ticks) broadcast to every
//! shard, because that state is replicated.
//!
//! **Ticks** fan out with per-shard user *sub-lists* (order preserved,
//! possibly empty): every shard runs every tick so its `tick_seq`,
//! batch preamble and `engine.ticks` counter advance exactly like the
//! single process's. Fan-out is *pipelined* — the router dispatches
//! every sub-list before reading any response — so the per-shard tick
//! work runs concurrently across the agent processes. Each shard returns its events in sub-list order;
//! the router re-interleaves them into global request order by walking
//! the full user list and popping the owning shard's queue while its
//! front event belongs to that user — sound because, on a clean
//! transport, every event a tick emits belongs to the user being
//! ticked. Leftover events are a routing bug and fail loudly.
//!
//! **Observability** merges per-shard snapshots through
//! [`pphcr_obs::merge`] with the plan this deployment implies:
//! `engine.ticks` and the catalog gauges are replicated (asserted
//! equal), everything else sums, and `bus.published` sheds the
//! `(N-1) × ingests` double count that broadcasting `IngestClip`
//! introduces (each shard's bus publishes its own `Ingested` message).
//! The decision trace re-interleaves from the router's tick log by
//! matching `(user, at_s)` against each owning shard's trace queue.
//!
//! **Rebalancing** is snapshot handoff: the donor shard exports its
//! engine snapshot ([`Request::Snapshot`]), a fresh agent restores it
//! ([`Request::Restore`]) and takes over the slot, byte-identically —
//! mid-stream, without replaying the command history.

use crate::agent::AgentState;
use crate::protocol::{read_frame, write_frame, ProtoError, Request, Response, WireEvent};
use pphcr_core::{user_shard, EngineCommand};
use pphcr_obs::merge::{merge_snapshots, MergeError, MergePlan};
use pphcr_obs::{DecisionTraceEntry, ObsSnapshot};
use pphcr_userdata::UserId;
use std::collections::VecDeque;
use std::fmt;
use std::io::BufReader;
use std::path::Path;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// Typed failures of the sharded deployment.
#[derive(Debug)]
pub enum ShardError {
    /// A router needs at least one shard.
    NoShards,
    /// The wire protocol failed (pipe, framing, decode).
    Proto(ProtoError),
    /// An agent reported an infrastructure fault.
    AgentFault(String),
    /// An agent's pipe closed while a response was expected.
    AgentExited,
    /// The agent process could not be spawned.
    Spawn(std::io::Error),
    /// An agent answered with a response kind the call did not expect,
    /// or out of sequence.
    BadResponse,
    /// A shard rejected its tick sub-list — the router requires tick
    /// user lists to be registered, the same contract
    /// `Engine::run_tick` enforces up front.
    TickRejected(String),
    /// A broadcast command produced events or a rejection on some
    /// shard — replicated state has diverged.
    BroadcastDiverged {
        /// The shard that disagreed.
        shard: usize,
    },
    /// A tick left events in a shard queue the request order could not
    /// account for.
    EventLeak {
        /// The shard holding unaccounted events.
        shard: usize,
    },
    /// Shard traces held entries the router's tick log could not
    /// account for.
    TraceLeak {
        /// The shard holding unaccounted entries.
        shard: usize,
    },
    /// The observability fold failed.
    Merge(MergeError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "router needs at least one shard"),
            ShardError::Proto(e) => write!(f, "protocol failure: {e}"),
            ShardError::AgentFault(msg) => write!(f, "agent fault: {msg}"),
            ShardError::AgentExited => write!(f, "agent exited mid-conversation"),
            ShardError::Spawn(e) => write!(f, "could not spawn agent: {e}"),
            ShardError::BadResponse => write!(f, "agent answered out of protocol"),
            ShardError::TickRejected(msg) => write!(f, "shard rejected tick: {msg}"),
            ShardError::BroadcastDiverged { shard } => {
                write!(f, "broadcast diverged on shard {shard}")
            }
            ShardError::EventLeak { shard } => {
                write!(f, "unaccounted events left on shard {shard}")
            }
            ShardError::TraceLeak { shard } => {
                write!(f, "unaccounted trace entries left on shard {shard}")
            }
            ShardError::Merge(e) => write!(f, "observability merge failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<ProtoError> for ShardError {
    fn from(e: ProtoError) -> Self {
        ShardError::Proto(e)
    }
}

impl From<MergeError> for ShardError {
    fn from(e: MergeError) -> Self {
        ShardError::Merge(e)
    }
}

/// One shard connection: request in, response out. Implemented by the
/// real child-process pipe and by an in-process agent (unit tests,
/// in-memory deployments) — the router cannot tell them apart.
///
/// The primitives are split so the router can *pipeline* fan-out:
/// dispatch a request to every shard first ([`send`](Self::send)),
/// then collect responses in the same order ([`recv`](Self::recv)).
/// Across process shards that overlaps the per-shard engine work —
/// shard K computes its tick while the router still waits on shard
/// K−1's response — which is where the scaling curve comes from.
pub trait ShardTransport {
    /// Dispatches one request without waiting for its response.
    ///
    /// # Errors
    /// [`ShardError`] when the transport fails to accept the request.
    fn send(&mut self, request: &Request) -> Result<(), ShardError>;

    /// Receives the response to the oldest outstanding
    /// [`send`](Self::send), in dispatch order.
    ///
    /// # Errors
    /// [`ShardError`] when the transport or the agent fails; an
    /// agent-side [`Response::Fault`] surfaces as
    /// [`ShardError::AgentFault`].
    fn recv(&mut self) -> Result<Response, ShardError>;

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    /// As for [`send`](Self::send) and [`recv`](Self::recv).
    fn call(&mut self, request: &Request) -> Result<Response, ShardError> {
        self.send(request)?;
        self.recv()
    }
}

/// An agent living in this process, behind the same codec the pipe
/// uses: requests and responses round-trip through their wire encoding
/// so in-process deployments exercise byte-level fidelity too.
#[derive(Default)]
pub struct InProcessShard {
    state: AgentState,
    pending: VecDeque<Response>,
}

impl InProcessShard {
    /// A fresh in-process shard agent.
    #[must_use]
    pub fn new() -> Self {
        InProcessShard { state: AgentState::new(), pending: VecDeque::new() }
    }
}

impl ShardTransport for InProcessShard {
    fn send(&mut self, request: &Request) -> Result<(), ShardError> {
        let (kind, body) = request.encode();
        let decoded = Request::decode(kind, &body)?;
        let response = self.state.handle(decoded);
        let (kind, body) = response.encode();
        self.pending.push_back(Response::decode(kind, &body)?);
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ShardError> {
        match self.pending.pop_front() {
            Some(Response::Fault(msg)) => Err(ShardError::AgentFault(msg)),
            Some(ok) => Ok(ok),
            None => Err(ShardError::BadResponse),
        }
    }
}

/// A shard agent child process, spoken to over piped stdin/stdout.
/// Dropping the handle closes the pipe (the agent's shutdown signal)
/// and reaps the process.
#[derive(Debug)]
pub struct ProcessShard {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    seq: u64,
    /// Sequence numbers of dispatched-but-unread requests, oldest
    /// first; [`recv`](ShardTransport::recv) matches responses against
    /// these in order.
    outstanding: VecDeque<u64>,
}

impl ProcessShard {
    /// Spawns the agent binary at `path` with piped stdio.
    ///
    /// # Errors
    /// [`ShardError::Spawn`] when the process cannot start or its
    /// pipes are unavailable.
    pub fn spawn(path: &Path) -> Result<Self, ShardError> {
        let mut child = Command::new(path)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(ShardError::Spawn)?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take();
        match (stdin, stdout) {
            (Some(stdin), Some(stdout)) => Ok(ProcessShard {
                child,
                stdin: Some(stdin),
                stdout: BufReader::new(stdout),
                seq: 0,
                outstanding: VecDeque::new(),
            }),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                Err(ShardError::Spawn(std::io::Error::other("stdio pipes unavailable")))
            }
        }
    }
}

impl ShardTransport for ProcessShard {
    fn send(&mut self, request: &Request) -> Result<(), ShardError> {
        self.seq += 1;
        let Some(stdin) = self.stdin.as_mut() else {
            return Err(ShardError::AgentExited);
        };
        let (kind, body) = request.encode();
        write_frame(stdin, self.seq, kind, &body)?;
        self.outstanding.push_back(self.seq);
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ShardError> {
        let Some(expected) = self.outstanding.pop_front() else {
            return Err(ShardError::BadResponse);
        };
        let Some((seq, kind, body)) = read_frame(&mut self.stdout)? else {
            return Err(ShardError::AgentExited);
        };
        if seq != expected {
            return Err(ShardError::BadResponse);
        }
        match Response::decode(kind, &body)? {
            Response::Fault(msg) => Err(ShardError::AgentFault(msg)),
            ok => Ok(ok),
        }
    }
}

impl Drop for ProcessShard {
    fn drop(&mut self) {
        // Closing stdin is the agent's clean-shutdown signal.
        self.stdin = None;
        let _ = self.child.wait();
    }
}

/// The command router over N shards.
pub struct Router<T: ShardTransport> {
    shards: Vec<T>,
    /// Commands applied so far; used as the `op=` index on identity
    /// lines so sharded and single-process streams align positionally.
    applied: u64,
    /// `IngestClip` broadcasts seen — the `bus.published` double-count
    /// the merge plan must shed.
    ingest_broadcasts: u64,
    /// `(at_s, users)` of every tick, in order — the interleave key
    /// for the merged decision trace.
    tick_log: Vec<(u64, Vec<UserId>)>,
}

impl<T: ShardTransport> Router<T> {
    /// A router over the given shard connections (at least one).
    ///
    /// # Errors
    /// [`ShardError::NoShards`] on an empty shard set.
    pub fn new(shards: Vec<T>) -> Result<Self, ShardError> {
        if shards.is_empty() {
            return Err(ShardError::NoShards);
        }
        Ok(Router { shards, applied: 0, ingest_broadcasts: 0, tick_log: Vec::new() })
    }

    /// Number of shards behind this router.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The owning shard index of a user under this router's partition.
    #[must_use]
    pub fn owner(&self, user: UserId) -> usize {
        user_shard(user, self.shards.len() as u64) as usize
    }

    /// Applies one command across the deployment, returning the
    /// identity lines (`op=<i> event=…` / `op=<i> rejected=…`) in the
    /// exact order the single-process engine would emit them.
    ///
    /// # Errors
    /// [`ShardError`] on transport failure or identity violations
    /// (event leaks, diverged broadcasts, rejected tick sub-lists).
    pub fn apply(&mut self, cmd: &EngineCommand) -> Result<Vec<String>, ShardError> {
        let op = self.applied;
        self.applied += 1;
        match cmd.target_user() {
            Some(user) => {
                let shard = self.owner(user);
                let response = self.call_shard(shard, &Request::Apply(cmd.clone()))?;
                let Response::Applied { error, events } = response else {
                    return Err(ShardError::BadResponse);
                };
                Ok(render_lines(op, &events, error.as_deref()))
            }
            None => match cmd {
                EngineCommand::Tick { users, now, batch, workers } => {
                    let lines = self.apply_tick(op, users, *now, *batch, *workers)?;
                    Ok(lines)
                }
                other => {
                    if matches!(other, EngineCommand::IngestClip { .. }) {
                        self.ingest_broadcasts += 1;
                    }
                    self.broadcast(other)?;
                    Ok(Vec::new())
                }
            },
        }
    }

    /// Broadcasts a replicated-state command; every shard must accept
    /// it silently (these commands emit no events and cannot be
    /// rejected on one shard but not another). Dispatches to every
    /// shard before collecting any response so the shards apply it
    /// concurrently.
    fn broadcast(&mut self, cmd: &EngineCommand) -> Result<(), ShardError> {
        let request = Request::Apply(cmd.clone());
        for shard in 0..self.shards.len() {
            self.send_shard(shard, &request)?;
        }
        for shard in 0..self.shards.len() {
            let response = self.recv_shard(shard)?;
            let Response::Applied { error, events } = response else {
                return Err(ShardError::BadResponse);
            };
            if error.is_some() || !events.is_empty() {
                return Err(ShardError::BroadcastDiverged { shard });
            }
        }
        Ok(())
    }

    /// Fans a tick out to every shard with its user sub-list, then
    /// re-interleaves the per-shard event queues into request order.
    fn apply_tick(
        &mut self,
        op: u64,
        users: &[UserId],
        now: pphcr_geo::TimePoint,
        batch: bool,
        workers: Option<u64>,
    ) -> Result<Vec<String>, ShardError> {
        let n = self.shards.len();
        let mut subs: Vec<Vec<UserId>> = vec![Vec::new(); n];
        for &user in users {
            let shard = self.owner(user);
            if let Some(sub) = subs.get_mut(shard) {
                sub.push(user);
            }
        }
        // Pipelined fan-out: every shard gets its sub-list before any
        // response is read, so the per-shard tick work overlaps across
        // processes instead of serialising on the router.
        for (shard, sub) in subs.into_iter().enumerate() {
            let request = Request::Apply(EngineCommand::Tick { users: sub, now, batch, workers });
            self.send_shard(shard, &request)?;
        }
        let mut queues: Vec<VecDeque<WireEvent>> = Vec::with_capacity(n);
        for shard in 0..n {
            let response = self.recv_shard(shard)?;
            let Response::Applied { error, events } = response else {
                return Err(ShardError::BadResponse);
            };
            if let Some(msg) = error {
                return Err(ShardError::TickRejected(msg));
            }
            queues.push(events.into());
        }
        let mut merged: Vec<WireEvent> = Vec::new();
        for &user in users {
            let shard = self.owner(user);
            if let Some(queue) = queues.get_mut(shard) {
                while queue.front().is_some_and(|e| e.user == user.0) {
                    if let Some(event) = queue.pop_front() {
                        merged.push(event);
                    }
                }
            }
        }
        if let Some(shard) = queues.iter().position(|q| !q.is_empty()) {
            return Err(ShardError::EventLeak { shard });
        }
        self.tick_log.push((now.seconds(), users.to_vec()));
        Ok(render_lines(op, &merged, None))
    }

    /// Captures every shard's observability snapshot and folds them
    /// into the single-process equivalent.
    ///
    /// # Errors
    /// [`ShardError::Merge`] when the fold fails its invariants,
    /// [`ShardError::TraceLeak`] when shard traces hold entries the
    /// tick log cannot place.
    pub fn merged_obs(&mut self) -> Result<ObsSnapshot, ShardError> {
        for shard in 0..self.shards.len() {
            self.send_shard(shard, &Request::Obs)?;
        }
        let mut parts: Vec<ObsSnapshot> = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            match self.recv_shard(shard)? {
                Response::Obs(snap) => parts.push(snap),
                _ => return Err(ShardError::BadResponse),
            }
        }
        let trace = self.interleave_traces(&parts)?;
        let n = self.shards.len() as i64;
        let plan = MergePlan {
            replicated_counters: vec!["engine.ticks".to_string()],
            replicated_gauges: vec!["catalog.clips".to_string(), "catalog.epoch".to_string()],
            gauge_deductions: vec![(
                "bus.published".to_string(),
                (n - 1) * self.ingest_broadcasts as i64,
            )],
            trace,
        };
        Ok(merge_snapshots(&parts, &plan)?)
    }

    /// Rebuilds the global decision-trace order from the tick log: a
    /// tick of user `u` at `t` contributed at most one entry to `u`'s
    /// owning shard, so walking ticks in order and matching `(user,
    /// at_s)` against each shard queue's front restores the exact
    /// single-process sequence.
    fn interleave_traces(
        &self,
        parts: &[ObsSnapshot],
    ) -> Result<Vec<DecisionTraceEntry>, ShardError> {
        let mut queues: Vec<VecDeque<DecisionTraceEntry>> =
            parts.iter().map(|p| p.trace.iter().cloned().collect()).collect();
        let mut merged = Vec::new();
        for (at_s, users) in &self.tick_log {
            for &user in users {
                let shard = self.owner(user);
                if let Some(queue) = queues.get_mut(shard) {
                    if queue.front().is_some_and(|e| e.user == user.0 && e.at_s == *at_s) {
                        if let Some(entry) = queue.pop_front() {
                            merged.push(entry);
                        }
                    }
                }
            }
        }
        if let Some(shard) = queues.iter().position(|q| !q.is_empty()) {
            return Err(ShardError::TraceLeak { shard });
        }
        Ok(merged)
    }

    /// Migrates shard `index` onto `replacement` by snapshot handoff:
    /// the donor exports its engine snapshot, the replacement restores
    /// it byte-identically and takes over the slot. The donor is
    /// dropped (for a [`ProcessShard`], that closes its pipe and reaps
    /// the process).
    ///
    /// # Errors
    /// [`ShardError`] when either side fails; on failure the donor
    /// stays in place.
    pub fn rebalance(&mut self, index: usize, mut replacement: T) -> Result<(), ShardError> {
        let snapshot = match self.call_shard(index, &Request::Snapshot)? {
            Response::Snapshot(bytes) => bytes,
            _ => return Err(ShardError::BadResponse),
        };
        match replacement.call(&Request::Restore(snapshot))? {
            Response::Restored => {}
            _ => return Err(ShardError::BadResponse),
        }
        if let Some(slot) = self.shards.get_mut(index) {
            *slot = replacement;
        }
        Ok(())
    }

    fn call_shard(&mut self, index: usize, request: &Request) -> Result<Response, ShardError> {
        match self.shards.get_mut(index) {
            Some(shard) => shard.call(request),
            None => Err(ShardError::NoShards),
        }
    }

    fn send_shard(&mut self, index: usize, request: &Request) -> Result<(), ShardError> {
        match self.shards.get_mut(index) {
            Some(shard) => shard.send(request),
            None => Err(ShardError::NoShards),
        }
    }

    fn recv_shard(&mut self, index: usize) -> Result<Response, ShardError> {
        match self.shards.get_mut(index) {
            Some(shard) => shard.recv(),
            None => Err(ShardError::NoShards),
        }
    }
}

/// Renders the identity lines for one applied command: one line per
/// event in order, then the rejection line when the command was
/// rejected — the same shapes the single-process baseline renders.
fn render_lines(op: u64, events: &[WireEvent], error: Option<&str>) -> Vec<String> {
    let mut out: Vec<String> = events.iter().map(|e| format!("op={op} event={}", e.line)).collect();
    if let Some(err) = error {
        out.push(format!("op={op} rejected={err}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_catalog::ServiceIndex;
    use pphcr_geo::TimePoint;
    use pphcr_userdata::{AgeBand, UserProfile};

    fn in_process_router(n: usize) -> Router<InProcessShard> {
        Router::new((0..n).map(|_| InProcessShard::new()).collect()).unwrap()
    }

    fn register(user: u64, now: TimePoint) -> EngineCommand {
        EngineCommand::RegisterUser {
            profile: UserProfile {
                id: UserId(user),
                name: format!("listener {user}"),
                age_band: AgeBand::Adult,
                favourite_service: ServiceIndex(0),
            },
            now,
        }
    }

    #[test]
    fn routes_by_partition_and_broadcasts_ticks() {
        let mut router = in_process_router(2);
        let now = TimePoint::at(0, 9, 0, 0);
        let users: Vec<UserId> = (1..=6).map(UserId).collect();
        for &u in &users {
            router.apply(&register(u.0, now)).unwrap();
        }
        // Both shards own at least one of six users with this hash.
        let owners: std::collections::BTreeSet<usize> =
            users.iter().map(|&u| router.owner(u)).collect();
        assert_eq!(owners.len(), 2, "partition is degenerate for this user set");
        let lines = router
            .apply(&EngineCommand::Tick {
                users: users.clone(),
                now: now.advance(pphcr_geo::TimeSpan::minutes(1)),
                batch: true,
                workers: Some(1),
            })
            .unwrap();
        // Fresh listeners with no fixes produce no events, but every
        // shard must have ticked exactly once.
        assert!(lines.is_empty(), "{lines:?}");
        let obs = router.merged_obs().unwrap();
        assert_eq!(obs.counter("engine.ticks"), 1);
        assert_eq!(obs.counter("engine.tick_users"), 6);
    }

    #[test]
    fn rejections_surface_as_recorded_outcomes() {
        let mut router = in_process_router(2);
        let now = TimePoint::at(0, 9, 0, 0);
        let lines = router
            .apply(&EngineCommand::ChangeService {
                user: UserId(404),
                service: ServiceIndex(1),
                now,
            })
            .unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines.first().unwrap().contains("rejected="), "{lines:?}");
    }

    #[test]
    fn rebalance_hands_state_to_a_fresh_shard() {
        let mut router = in_process_router(2);
        let now = TimePoint::at(0, 9, 0, 0);
        for u in 1..=4u64 {
            router.apply(&register(u, now)).unwrap();
        }
        let before = router.merged_obs().unwrap().to_json();
        router.rebalance(1, InProcessShard::new()).unwrap();
        let after = router.merged_obs().unwrap().to_json();
        assert_eq!(before, after);
    }

    #[test]
    fn empty_router_is_refused() {
        assert!(matches!(Router::<InProcessShard>::new(Vec::new()), Err(ShardError::NoShards)));
    }
}
