//! The shard agent binary: one engine partition served over
//! stdin/stdout. Spawned by the router (or the smoke driver); exits
//! cleanly when its stdin closes.

fn main() {
    let mut input = std::io::stdin().lock();
    let mut output = std::io::BufWriter::new(std::io::stdout().lock());
    if let Err(e) = pphcr_shard::serve(&mut input, &mut output) {
        eprintln!("shard agent: {e}");
        std::process::exit(1);
    }
}
