//! The shard smoke driver: spawns a real multi-process sharded
//! deployment, runs the differential workload through it, and asserts
//! byte-identity against the single-process baseline — including one
//! mid-stream snapshot-handoff rebalance.
//!
//! ```text
//! shard_smoke [--shards N] [--seed S] [--rebalance-at K] [--agent PATH] [--out PATH]
//! ```
//!
//! Exit codes: 0 identical, 1 divergence, 2 usage or infrastructure
//! failure. `--out` writes the identity artefact (verdict, line count,
//! merged observability JSON) for CI upload.

use pphcr_shard::{commands, run_single, ProcessShard, Router, ShardError};
use std::path::PathBuf;

struct Options {
    shards: usize,
    seed: u64,
    rebalance_at: Option<usize>,
    agent: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { shards: 2, seed: 1, rebalance_at: None, agent: None, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--shards" => {
                opts.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--rebalance-at" => {
                opts.rebalance_at = Some(
                    value("--rebalance-at")?.parse().map_err(|e| format!("--rebalance-at: {e}"))?,
                );
            }
            "--agent" => opts.agent = Some(PathBuf::from(value("--agent")?)),
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.shards == 0 {
        return Err("--shards must be positive".into());
    }
    Ok(opts)
}

/// The agent binary: `--agent` if given, else `shard_agent` next to
/// this executable (the layout `cargo build` produces).
fn agent_path(opts: &Options) -> Result<PathBuf, String> {
    if let Some(path) = &opts.agent {
        return Ok(path.clone());
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("executable has no parent directory")?;
    let candidate = dir.join("shard_agent");
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(format!("agent binary not found at {}; pass --agent", candidate.display()))
    }
}

fn run(opts: &Options) -> Result<i32, ShardError> {
    let ops = commands(opts.seed);
    let baseline = run_single(&ops);

    let agent = match agent_path(opts) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("shard-smoke: {msg}");
            return Ok(2);
        }
    };
    let spawn_all = |n: usize| -> Result<Vec<ProcessShard>, ShardError> {
        (0..n).map(|_| ProcessShard::spawn(&agent)).collect()
    };
    let mut router = Router::new(spawn_all(opts.shards)?)?;

    let rebalance_at = opts.rebalance_at.unwrap_or(ops.len() / 2).min(ops.len());
    let mut lines = Vec::new();
    for (i, cmd) in ops.iter().enumerate() {
        if i == rebalance_at {
            // Mid-stream snapshot handoff: shard 0 donates its state
            // to a fresh process and is retired.
            router.rebalance(0, ProcessShard::spawn(&agent)?)?;
        }
        lines.extend(router.apply(cmd)?);
    }
    let merged = router.merged_obs()?.to_json();

    let lines_ok = lines == baseline.lines;
    let obs_ok = merged == baseline.obs_json;
    let verdict = if lines_ok && obs_ok { "identical" } else { "DIVERGED" };
    println!(
        "shard-smoke: shards={} seed={} ops={} lines={} rebalance_at={} verdict={verdict}",
        opts.shards,
        opts.seed,
        ops.len(),
        lines.len(),
        rebalance_at,
    );
    if !lines_ok {
        report_line_diff(&baseline.lines, &lines);
    }
    if !obs_ok {
        report_obs_diff(&baseline.obs_json, &merged);
    }

    if let Some(out) = &opts.out {
        let artifact = format!(
            "verdict={verdict}\nshards={}\nseed={}\nops={}\nlines={}\nrebalance_at={}\n--- merged obs ---\n{merged}",
            opts.shards,
            opts.seed,
            ops.len(),
            lines.len(),
            rebalance_at,
        );
        // lint: allow(fsync-free-write) — CI artifact, not durable state.
        if let Err(e) = std::fs::write(out, artifact) {
            eprintln!("shard-smoke: could not write {}: {e}", out.display());
            return Ok(2);
        }
    }
    Ok(i32::from(!(lines_ok && obs_ok)))
}

fn report_line_diff(baseline: &[String], sharded: &[String]) {
    eprintln!("line streams differ: baseline={} sharded={}", baseline.len(), sharded.len());
    for (i, (b, s)) in baseline.iter().zip(sharded.iter()).enumerate() {
        if b != s {
            eprintln!("first divergence at line {i}:\n  baseline: {b}\n  sharded:  {s}");
            return;
        }
    }
    let i = baseline.len().min(sharded.len());
    eprintln!(
        "streams agree up to line {i}; extra side starts with: {:?}",
        baseline.get(i).or_else(|| sharded.get(i))
    );
}

fn report_obs_diff(baseline: &str, merged: &str) {
    for (i, (b, s)) in baseline.lines().zip(merged.lines()).enumerate() {
        if b != s {
            eprintln!("obs JSON diverges at line {i}:\n  baseline: {b}\n  merged:   {s}");
            return;
        }
    }
    eprintln!("obs JSON lengths differ: baseline={} merged={}", baseline.len(), merged.len());
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("shard-smoke: {msg}");
            std::process::exit(2);
        }
    };
    match run(&opts) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("shard-smoke: {e}");
            std::process::exit(2);
        }
    }
}
