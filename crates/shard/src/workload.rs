//! The deterministic differential workload and its single-process
//! baseline.
//!
//! [`commands`] scripts a seeded mixed day — registrations, classifier
//! training, environment configuration, catalog ingest, GPS drives,
//! feedback, editorial injections (including a rejected one), skips,
//! player advances (including a rejected one) and interleaved batch
//! ticks — exercising every [`EngineCommand`] variant. The script is
//! built for *N-invariance*: it runs on the default clean transport
//! (retries and chaos leak events across tick turns and are exercised
//! by the crash sweep instead), keeps injections far below the
//! editorial queue's reject threshold, and ends with a drain tick so
//! no bus message is still in flight when snapshots are captured.
//!
//! [`run_single`] folds the script through one engine via
//! [`Engine::apply`] — the exact function every shard agent applies
//! forwarded commands with — recording the identity lines and the
//! observability snapshot the sharded deployment must reproduce
//! byte-for-byte.

use pphcr_catalog::{CategoryId, ClipKind, Gazetteer, GeoTag, ServiceIndex};
use pphcr_core::{CoverageMap, Engine, EngineCommand, EngineConfig};
use pphcr_geo::{GeoPoint, NodeKind, ProjectedPoint, RoadNetwork, TimePoint, TimeSpan};
use pphcr_trajectory::GpsFix;
use pphcr_userdata::{AgeBand, FeedbackEvent, FeedbackKind, UserId, UserProfile};

/// Listeners in the scripted workload — enough that every shard of a
/// four-way split owns several.
pub const USERS: u64 = 12;

/// The scenario origin (central Torino, like the paper's pilot).
const ORIGIN: (f64, f64) = (45.0703, 7.6869);

fn t0() -> TimePoint {
    TimePoint::at(0, 9, 0, 0)
}

fn fix(user: u64, point: GeoPoint, time: TimePoint, speed_mps: f64) -> EngineCommand {
    EngineCommand::RecordFix { user: UserId(user), fix: GpsFix { point, time, speed_mps } }
}

/// The scripted command sequence: a deterministic function of `seed`
/// covering every [`EngineCommand`] variant under clean-transport
/// N-invariance constraints.
#[must_use]
pub fn commands(seed: u64) -> Vec<EngineCommand> {
    let start = t0();
    let mut ops = Vec::new();

    for u in 1..=USERS {
        ops.push(EngineCommand::RegisterUser {
            profile: UserProfile {
                id: UserId(u),
                name: format!("listener {u}"),
                age_band: if u % 2 == 0 { AgeBand::Adult } else { AgeBand::Young },
                favourite_service: ServiceIndex(0),
            },
            now: start,
        });
    }

    ops.push(EngineCommand::TrainClassifier {
        category: CategoryId::new(1),
        tokens: vec!["traffic".into(), "ring".into(), "road".into(), "queue".into()],
    });
    ops.push(EngineCommand::TrainClassifier {
        category: CategoryId::new(2),
        tokens: vec!["football".into(), "derby".into(), "goal".into(), "league".into()],
    });

    // Replicated environment: DAB coverage, a toy road network, a
    // gazetteer — broadcast to every shard by the router.
    let mut coverage = CoverageMap::new();
    coverage.add(ProjectedPoint::new(0.0, 0.0), 20_000.0);
    ops.push(EngineCommand::SetCoverage { coverage });
    let mut network = RoadNetwork::new();
    let a = network.add_node(ProjectedPoint::new(0.0, 0.0), NodeKind::Intersection);
    let b = network.add_node(ProjectedPoint::new(1_500.0, 400.0), NodeKind::Roundabout);
    network.add_edge(a, b, 13.9);
    ops.push(EngineCommand::SetRoadNetwork { network });
    let mut gazetteer = Gazetteer::new();
    gazetteer.add_place("torino", GeoPoint::new(ORIGIN.0, ORIGIN.1), 5_000.0);
    ops.push(EngineCommand::SetGazetteer { gazetteer });

    // Corpus: a dozen clips, half editorially labelled, a third
    // geo-tagged, publication jitter derived from the seed.
    for i in 0..12u64 {
        let jitter = (seed.wrapping_mul(2_654_435_761).wrapping_add(i * 97)) % 600;
        let geo = (i % 3 == 0).then(|| GeoTag {
            point: GeoPoint::new(ORIGIN.0 + 0.001 * i as f64, ORIGIN.1 - 0.0005 * i as f64),
            radius_m: 800.0,
        });
        ops.push(EngineCommand::IngestClip {
            title: format!("clip {i} (seed {seed})"),
            kind: if i % 4 == 0 { ClipKind::NewsBulletin } else { ClipKind::Podcast },
            duration: TimeSpan::seconds(120 + (i % 5) * 30),
            published: TimePoint::at(8, 7, 0, 0).advance(TimeSpan::seconds(jitter)),
            geo,
            tokens: vec![
                if i % 2 == 0 { "traffic".into() } else { "football".into() },
                format!("token{i}"),
                "torino".into(),
            ],
            editorial: (i % 2 == 0).then(|| CategoryId::new((i % 3) as u16 + 1)),
        });
    }

    // A week of commutes for two listeners (who land on different
    // shards of a two-way split), so trip prediction is armed and the
    // ticks below produce real proactive schedules — the events the
    // identity check feeds on. Geometry mirrors the §2.1.2 scenario:
    // home, a 9 km drive at ~7.5 m/s, a work stay, and the return.
    let home = GeoPoint::new(ORIGIN.0, ORIGIN.1);
    let bearing = |u: u64| 60.0 + 20.0 * u as f64;
    for u in 1..=2u64 {
        let work = home.destination(bearing(u), 9_000.0);
        for day in 1..=7u64 {
            let d0 = TimePoint::at(day, 0, 0, 0);
            for i in 0..90 {
                ops.push(fix(u, home, d0.advance(TimeSpan::minutes(i * 5)), 0.1));
            }
            for i in 0..40u64 {
                let frac = i as f64 / 39.0;
                ops.push(fix(
                    u,
                    home.destination(bearing(u), frac * 9_000.0),
                    d0.advance(TimeSpan::hours(8)).advance(TimeSpan::seconds(i * 30)),
                    7.5,
                ));
            }
            for i in 0..57 {
                ops.push(fix(u, work, d0.advance(TimeSpan::minutes(510 + i * 10)), 0.2));
            }
            for i in 0..40u64 {
                let frac = i as f64 / 39.0;
                ops.push(fix(
                    u,
                    work.destination(bearing(u) + 180.0, frac * 9_000.0),
                    d0.advance(TimeSpan::hours(18)).advance(TimeSpan::seconds(i * 30)),
                    7.5,
                ));
            }
            for i in 0..66 {
                ops.push(fix(u, home, d0.advance(TimeSpan::minutes(1105 + i * 5)), 0.1));
            }
        }
    }

    // Tastes for the commuters: likes on the editorially labelled
    // categories, so the scheduler has ranked candidates to pack.
    for u in 1..=2u64 {
        for cat in [1u16, 2] {
            for rep in 0..3u64 {
                ops.push(EngineCommand::RecordFeedback {
                    event: FeedbackEvent {
                        user: UserId(u),
                        clip: None,
                        category: CategoryId::new(cat),
                        kind: FeedbackKind::Like,
                        time: TimePoint::at(8, 6, 0, 0)
                            .advance(TimeSpan::seconds(u * 60 + u64::from(cat) * 10 + rep)),
                    },
                });
            }
        }
    }

    // Day 8, 08:00 — the live morning drive the ticks run against.
    let live0 = TimePoint::at(8, 8, 0, 0);
    let mut mixed = Vec::new();

    for (i, kind) in [
        FeedbackKind::Like,
        FeedbackKind::Dislike,
        FeedbackKind::ListenedThrough,
        FeedbackKind::PartialListen(0.5),
    ]
    .into_iter()
    .enumerate()
    {
        mixed.push(EngineCommand::RecordFeedback {
            event: FeedbackEvent {
                user: UserId(i as u64 % USERS + 1),
                clip: (i % 2 == 0).then(|| pphcr_audio::ClipId(i as u64 + 1)),
                category: CategoryId::new((i % 3) as u16 + 1),
                kind,
                time: live0.advance(TimeSpan::seconds(40 + i as u64 * 10)),
            },
        });
    }

    // Editorial pushes: two valid, one to a ghost listener — the
    // rejection is itself an identity line both deployments must emit.
    mixed.push(EngineCommand::Inject {
        user: UserId(1),
        clip: pphcr_audio::ClipId(1),
        at: live0.advance(TimeSpan::seconds(70)),
        note: "breaking".into(),
    });
    mixed.push(EngineCommand::Inject {
        user: UserId(7),
        clip: pphcr_audio::ClipId(2),
        at: live0.advance(TimeSpan::seconds(75)),
        note: "weather".into(),
    });
    mixed.push(EngineCommand::Inject {
        user: UserId(99),
        clip: pphcr_audio::ClipId(1),
        at: live0.advance(TimeSpan::seconds(80)),
        note: "ghost".into(),
    });

    mixed.push(EngineCommand::ChangeService {
        user: UserId(2),
        service: ServiceIndex(1),
        now: live0.advance(TimeSpan::seconds(90)),
    });
    mixed.push(EngineCommand::Skip { user: UserId(1), now: live0.advance(TimeSpan::seconds(95)) });
    mixed.push(EngineCommand::AdvancePlayer {
        user: UserId(1),
        now: live0.advance(TimeSpan::seconds(97)),
    });
    mixed.push(EngineCommand::AdvancePlayer {
        user: UserId(99),
        now: live0.advance(TimeSpan::seconds(98)),
    });

    // Interleave the mixed ops with batch ticks over a ~30-step
    // horizon, then a final drain tick so nothing is in flight when
    // the observability snapshots are captured.
    let users: Vec<UserId> = (1..=USERS).map(UserId).collect();
    let mut mixed_iter = mixed.into_iter();
    for step in 0..30u64 {
        if step % 2 == 0 {
            if let Some(cmd) = mixed_iter.next() {
                ops.push(cmd);
            }
        }
        // The live drive: the two trained commuters leave home along
        // their learned routes (users 3 and 4 wander without history),
        // one fix per listener per tick step, stamped at the tick time.
        let now = live0.advance(TimeSpan::seconds(100 + step * 30));
        let frac = step as f64 / 39.0;
        for u in 1..=4u64 {
            ops.push(fix(u, home.destination(bearing(u), frac * 9_000.0), now, 7.5));
        }
        ops.push(EngineCommand::Tick {
            users: users.clone(),
            now: live0.advance(TimeSpan::seconds(100 + step * 30)),
            batch: true,
            workers: Some(2),
        });
    }
    ops.extend(mixed_iter);
    ops.push(EngineCommand::Tick {
        users,
        now: live0.advance(TimeSpan::seconds(100 + 30 * 30)),
        batch: true,
        workers: Some(2),
    });
    ops
}

/// A tick-dominated script for the shard scaling curve: `users`
/// commuters each with a full week of history, then a live window of
/// `ticks` batch ticks (plus a drain tick). Returned as `(setup,
/// window)` so a bench can time the window alone — setup is
/// single-user traffic that serialises on the router's round-trips
/// whatever the shard count, while the window's tick fan-out is where
/// sharding can actually win. Ticks run with `workers: Some(1)` so the
/// only parallelism in play is the process sharding itself.
#[must_use]
pub fn tick_heavy(seed: u64, users: u64, ticks: u64) -> (Vec<EngineCommand>, Vec<EngineCommand>) {
    let start = t0();
    let mut setup = Vec::new();
    for u in 1..=users {
        setup.push(EngineCommand::RegisterUser {
            profile: UserProfile {
                id: UserId(u),
                name: format!("commuter {u}"),
                age_band: AgeBand::Adult,
                favourite_service: ServiceIndex(0),
            },
            now: start,
        });
    }
    for i in 0..12u64 {
        let jitter = (seed.wrapping_mul(2_654_435_761).wrapping_add(i * 131)) % 600;
        setup.push(EngineCommand::IngestClip {
            title: format!("morning clip {i} (seed {seed})"),
            kind: ClipKind::Podcast,
            duration: TimeSpan::minutes(4),
            published: TimePoint::at(7, 5, 0, 0).advance(TimeSpan::seconds(jitter)),
            geo: None,
            tokens: vec![],
            editorial: Some(CategoryId::new((i % 3) as u16 + 1)),
        });
    }
    let origin = GeoPoint::new(ORIGIN.0, ORIGIN.1);
    let route = |u: u64| {
        let home = origin.destination(30.0 * u as f64, 1_500.0 * u as f64);
        (home, 80.0 + 15.0 * u as f64)
    };
    for u in 1..=users {
        let (home, bearing) = route(u);
        let work = home.destination(bearing, 9_000.0);
        for day in 0..7u64 {
            let d0 = TimePoint::at(day, 0, 0, 0);
            for i in 0..90 {
                setup.push(fix(u, home, d0.advance(TimeSpan::minutes(i * 5)), 0.1));
            }
            for i in 0..40u64 {
                let frac = i as f64 / 39.0;
                setup.push(fix(
                    u,
                    home.destination(bearing, frac * 9_000.0),
                    d0.advance(TimeSpan::hours(8)).advance(TimeSpan::seconds(i * 30)),
                    7.5,
                ));
            }
            for i in 0..57 {
                setup.push(fix(u, work, d0.advance(TimeSpan::minutes(510 + i * 10)), 0.2));
            }
            for i in 0..66 {
                setup.push(fix(u, home, d0.advance(TimeSpan::minutes(1105 + i * 5)), 0.1));
            }
        }
    }

    // Day 8, 08:00: the live commute — one fix per listener per tick
    // step, then the batch tick over the whole fleet.
    let d8 = TimePoint::at(7, 8, 0, 0);
    let ids: Vec<UserId> = (1..=users).map(UserId).collect();
    let mut window = Vec::new();
    for step in 0..ticks {
        let now = d8.advance(TimeSpan::seconds(step * 30));
        let frac = step as f64 / 39.0;
        for u in 1..=users {
            let (home, bearing) = route(u);
            window.push(fix(u, home.destination(bearing, (frac * 9_000.0).min(9_000.0)), now, 7.5));
        }
        window.push(EngineCommand::Tick { users: ids.clone(), now, batch: true, workers: Some(1) });
    }
    window.push(EngineCommand::Tick {
        users: ids,
        now: d8.advance(TimeSpan::seconds(ticks * 30 + 900)),
        batch: true,
        workers: Some(1),
    });
    (setup, window)
}

/// The identity artefacts of one single-process run of the script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingleRun {
    /// `op=<i> event=…` / `op=<i> rejected=…` lines, in order.
    pub lines: Vec<String>,
    /// The final `ObsSnapshot` JSON.
    pub obs_json: String,
}

/// Runs the script through one default-config engine via
/// [`Engine::apply`], producing the baseline the sharded deployment
/// is diffed against.
#[must_use]
pub fn run_single(ops: &[EngineCommand]) -> SingleRun {
    let mut engine = Engine::new(EngineConfig::default());
    let mut lines = Vec::new();
    for (op, cmd) in ops.iter().enumerate() {
        match engine.apply(cmd) {
            Ok(events) => {
                lines.extend(events.iter().map(|e| format!("op={op} event={e:?}")));
            }
            Err(e) => lines.push(format!("op={op} rejected={e}")),
        }
    }
    SingleRun { lines, obs_json: engine.obs_snapshot().to_json() }
}

/// Like [`run_single`], but splits the script into an untimed `setup`
/// prefix and a timed `window`, returning the window wall time in
/// milliseconds alongside the identity artefacts of the whole run.
#[must_use]
pub fn run_single_windowed(setup: &[EngineCommand], window: &[EngineCommand]) -> (SingleRun, f64) {
    let mut engine = Engine::new(EngineConfig::default());
    let mut lines = Vec::new();
    let apply =
        |engine: &mut Engine, op0: usize, ops: &[EngineCommand], lines: &mut Vec<String>| {
            for (i, cmd) in ops.iter().enumerate() {
                let op = op0 + i;
                match engine.apply(cmd) {
                    Ok(events) => {
                        lines.extend(events.iter().map(|e| format!("op={op} event={e:?}")));
                    }
                    Err(e) => lines.push(format!("op={op} rejected={e}")),
                }
            }
        };
    apply(&mut engine, 0, setup, &mut lines);
    let started = pphcr_obs::timing::stopwatch();
    apply(&mut engine, setup.len(), window, &mut lines);
    let window_ms = started.elapsed_s() * 1e3;
    (SingleRun { lines, obs_json: engine.obs_snapshot().to_json() }, window_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_seed_deterministic_and_covers_all_variants() {
        assert_eq!(commands(3), commands(3));
        assert_ne!(commands(1), commands(2));
        let ops = commands(1);
        let mut seen = [false; 13];
        for cmd in &ops {
            let idx = match cmd {
                EngineCommand::RegisterUser { .. } => 0,
                EngineCommand::ChangeService { .. } => 1,
                EngineCommand::TrainClassifier { .. } => 2,
                EngineCommand::IngestClip { .. } => 3,
                EngineCommand::RecordFix { .. } => 4,
                EngineCommand::RecordFeedback { .. } => 5,
                EngineCommand::Inject { .. } => 6,
                EngineCommand::Skip { .. } => 7,
                EngineCommand::Tick { .. } => 8,
                EngineCommand::AdvancePlayer { .. } => 9,
                EngineCommand::SetCoverage { .. } => 10,
                EngineCommand::SetRoadNetwork { .. } => 11,
                EngineCommand::SetGazetteer { .. } => 12,
            };
            if let Some(slot) = seen.get_mut(idx) {
                *slot = true;
            }
        }
        assert!(seen.iter().all(|s| *s), "coverage: {seen:?}");
    }

    #[test]
    fn baseline_produces_events_and_rejections() {
        let run = run_single(&commands(1));
        assert!(run.lines.iter().any(|l| l.contains("event=")), "no events at all");
        assert!(run.lines.iter().any(|l| l.contains("rejected=")), "ghost ops not rejected");
        assert!(run.obs_json.contains("\"engine.ticks\": 31"));
    }
}
