//! The shard agent: one engine partition served over stdin/stdout.
//!
//! An agent is a [`DurableEngine`] (in-memory WAL — the router is the
//! durability authority in a sharded deployment; the agent's log
//! exists so apply semantics stay *identical* to the single-process
//! durable path) behind a read-dispatch-respond loop. It applies
//! forwarded commands through the same
//! [`apply`](pphcr_core::DurableEngine::apply) entry point recovery
//! replays through, exports its observability snapshot for merging,
//! and can donate or receive a full engine snapshot for rebalancing.

use crate::protocol::{read_frame, write_frame, ProtoError, Request, Response, WireEvent};
use pphcr_core::{restore_engine, DurableEngine, Engine, EngineConfig, MemWal};
use std::io::{Read, Write};

/// One shard's server state.
pub struct AgentState {
    durable: DurableEngine<MemWal>,
}

impl Default for AgentState {
    fn default() -> Self {
        AgentState::new()
    }
}

impl AgentState {
    /// A fresh agent over a default-config engine and an empty log.
    #[must_use]
    pub fn new() -> Self {
        AgentState {
            durable: DurableEngine::new(Engine::new(EngineConfig::default()), MemWal::new()),
        }
    }

    /// Read access to the wrapped engine (tests, smoke assertions).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        self.durable.engine()
    }

    /// Handles one request. Engine-level rejections are *outcomes*
    /// (carried inside [`Response::Applied`]); only infrastructure
    /// failures (undecodable snapshot, WAL fault) become
    /// [`Response::Fault`].
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Apply(cmd) => match self.durable.apply(cmd) {
                Ok(result) => Response::Applied {
                    error: result.error,
                    events: result
                        .events
                        .iter()
                        .map(|e| WireEvent { user: e.user().0, line: format!("{e:?}") })
                        .collect(),
                },
                Err(e) => Response::Fault(format!("wal append failed: {e}")),
            },
            Request::Obs => Response::Obs(self.durable.engine().obs_snapshot()),
            Request::Snapshot => match self.durable.snapshot_bytes() {
                Ok(bytes) => Response::Snapshot(bytes),
                Err(e) => Response::Fault(format!("snapshot export failed: {e}")),
            },
            Request::Restore(bytes) => match restore_engine(&bytes, &[]) {
                Ok((engine, report)) => {
                    self.durable =
                        DurableEngine::resume(engine, MemWal::new(), report.last_seq + 1);
                    Response::Restored
                }
                Err(e) => Response::Fault(format!("restore failed: {e}")),
            },
        }
    }
}

/// Serves requests from `input` until clean EOF (the router closing
/// the pipe is the shutdown signal), echoing each request's sequence
/// number on its response so the router can match them up.
///
/// # Errors
/// [`ProtoError`] when a frame is corrupt or the pipe fails mid-frame;
/// undecodable requests are answered with [`Response::Fault`] and the
/// loop continues.
pub fn serve(input: &mut impl Read, output: &mut impl Write) -> Result<(), ProtoError> {
    let mut state = AgentState::new();
    while let Some((seq, kind, body)) = read_frame(input)? {
        let response = match Request::decode(kind, &body) {
            Ok(request) => state.handle(request),
            Err(e) => Response::Fault(format!("bad request: {e}")),
        };
        let (kind, body) = response.encode();
        write_frame(output, seq, kind, &body)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_catalog::ServiceIndex;
    use pphcr_core::EngineCommand;
    use pphcr_geo::TimePoint;
    use pphcr_userdata::{AgeBand, UserId, UserProfile};

    fn register(user: u64) -> Request {
        Request::Apply(EngineCommand::RegisterUser {
            profile: UserProfile {
                id: UserId(user),
                name: format!("listener {user}"),
                age_band: AgeBand::Adult,
                favourite_service: ServiceIndex(0),
            },
            now: TimePoint::at(0, 9, 0, 0),
        })
    }

    #[test]
    fn apply_reports_outcomes_not_faults() {
        let mut agent = AgentState::new();
        let ok = agent.handle(register(1));
        assert_eq!(ok, Response::Applied { error: None, events: Vec::new() });
        // A rejected command is an outcome, byte-identical to what the
        // single-process engine would record.
        let rejected = agent.handle(Request::Apply(EngineCommand::ChangeService {
            user: UserId(9),
            service: ServiceIndex(1),
            now: TimePoint::at(0, 9, 0, 1),
        }));
        match rejected {
            Response::Applied { error: Some(msg), events } => {
                assert!(msg.contains('9'), "{msg}");
                assert!(events.is_empty());
            }
            other => panic!("expected recorded rejection: {other:?}"),
        }
    }

    #[test]
    fn snapshot_restore_round_trips_engine_state() {
        let mut donor = AgentState::new();
        donor.handle(register(1));
        donor.handle(Request::Apply(EngineCommand::Tick {
            users: vec![UserId(1)],
            now: TimePoint::at(0, 9, 5, 0),
            batch: true,
            workers: Some(1),
        }));
        let bytes = match donor.handle(Request::Snapshot) {
            Response::Snapshot(b) => b,
            other => panic!("no snapshot: {other:?}"),
        };
        let mut recipient = AgentState::new();
        assert_eq!(recipient.handle(Request::Restore(bytes.clone())), Response::Restored);
        // The recipient re-exports byte-identical state (the recovery
        // banner is in-memory only and deliberately not persisted).
        match recipient.handle(Request::Snapshot) {
            Response::Snapshot(again) => assert_eq!(again, bytes),
            other => panic!("no snapshot: {other:?}"),
        }
        assert_eq!(
            recipient.engine().obs_snapshot().to_json(),
            donor.engine().obs_snapshot().to_json()
        );
    }

    #[test]
    fn serve_answers_over_a_byte_pipe() {
        let mut input = Vec::new();
        let (kind, body) = register(2).encode();
        write_frame(&mut input, 1, kind, &body).unwrap();
        let (kind, body) = Request::Obs.encode();
        write_frame(&mut input, 2, kind, &body).unwrap();
        let mut output = Vec::new();
        serve(&mut std::io::Cursor::new(input), &mut output).unwrap();
        let mut cursor = std::io::Cursor::new(output);
        let (seq, kind, body) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(seq, 1);
        assert!(matches!(Response::decode(kind, &body).unwrap(), Response::Applied { .. }));
        let (seq, kind, body) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(seq, 2);
        assert!(matches!(Response::decode(kind, &body).unwrap(), Response::Obs(_)));
    }
}
