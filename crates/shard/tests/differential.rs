//! The differential identity suite: real multi-process sharded
//! deployments (spawned `shard_agent` binaries) must reproduce the
//! single-process run byte-for-byte — the event-line stream and the
//! merged observability snapshot — including across a mid-stream
//! snapshot-handoff rebalance.

use pphcr_shard::{commands, run_single, ProcessShard, Router, SingleRun};
use std::path::Path;

fn agent() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_shard_agent"))
}

fn spawn_router(n: usize) -> Router<ProcessShard> {
    let shards: Vec<ProcessShard> =
        (0..n).map(|_| ProcessShard::spawn(agent()).expect("spawn agent")).collect();
    Router::new(shards).expect("non-empty router")
}

/// Runs the scripted workload through `n` shard processes, optionally
/// rebalancing shard 0 onto a fresh process before op `rebalance_at`.
fn run_sharded(seed: u64, n: usize, rebalance_at: Option<usize>) -> SingleRun {
    let ops = commands(seed);
    let mut router = spawn_router(n);
    let mut lines = Vec::new();
    for (i, cmd) in ops.iter().enumerate() {
        if rebalance_at == Some(i) {
            router
                .rebalance(0, ProcessShard::spawn(agent()).expect("spawn replacement"))
                .expect("rebalance");
        }
        lines.extend(router.apply(cmd).expect("apply"));
    }
    let obs_json = router.merged_obs().expect("merge obs").to_json();
    SingleRun { lines, obs_json }
}

fn assert_identical(baseline: &SingleRun, sharded: &SingleRun, label: &str) {
    for (i, (b, s)) in baseline.lines.iter().zip(sharded.lines.iter()).enumerate() {
        assert_eq!(b, s, "{label}: first divergence at line {i}");
    }
    assert_eq!(baseline.lines.len(), sharded.lines.len(), "{label}: line counts differ");
    assert_eq!(baseline.obs_json, sharded.obs_json, "{label}: merged obs JSON differs");
}

#[test]
fn two_shards_are_byte_identical_to_one_process() {
    let baseline = run_single(&commands(1));
    assert!(
        baseline.lines.iter().any(|l| l.contains("Recommended")),
        "workload must produce proactive schedules for the diff to mean anything"
    );
    assert!(
        baseline.lines.iter().any(|l| l.contains("rejected=")),
        "workload must exercise the rejection path"
    );
    let sharded = run_sharded(1, 2, None);
    assert_identical(&baseline, &sharded, "2 shards");
}

#[test]
fn four_shards_are_byte_identical_to_one_process() {
    let baseline = run_single(&commands(1));
    let sharded = run_sharded(1, 4, None);
    assert_identical(&baseline, &sharded, "4 shards");
}

#[test]
fn mid_stream_rebalance_stays_byte_identical() {
    let ops = commands(3);
    let baseline = run_single(&ops);
    // Hand shard 0's state to a fresh process halfway through — right
    // in the middle of the tick phase, with deliveries in the ledger.
    let sharded = run_sharded(3, 2, Some(ops.len() / 2));
    assert_identical(&baseline, &sharded, "2 shards + rebalance");
}

#[test]
fn different_seeds_produce_different_baselines() {
    // Guards against the workload collapsing to a seed-independent
    // constant, which would quietly weaken every identity test above.
    let a = run_single(&commands(1));
    let b = run_single(&commands(2));
    assert_ne!(a.lines, b.lines);
}
