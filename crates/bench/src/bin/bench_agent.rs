//! One bench-harness agent process. Spawned by `pphcr-bench`, runs the
//! scenario suites against its own private `Engine` and prints exactly
//! one line of JSON — the `AgentSummary` wire form — to stdout.
//! Progress chatter goes to stderr so stdout stays machine-readable.
//!
//! Environment overrides (all optional):
//! * `AGENT_ID` — agent index reported in the summary, default 0.
//! * `AGENT_SEED` — seed for the stochastic suite, default 42.
//! * `AGENT_SUITES` — which suites to run: `ab`, `a` or `b`, default `ab`.
//! * `AGENT_USERS` — fleet size, default 200.
//! * `AGENT_CLIPS` — retrieval archive size, default 2000.
//! * `AGENT_TICKS` — ticks per deterministic scenario, default 50.
//! * `AGENT_PASSES` — retrieval passes over the fleet, default 3.
//! * `AGENT_ARRIVALS` — Poisson arrivals per chaos scenario, default 500.
//! * `AGENT_RATE_HZ` — Poisson arrival rate, default 8.
//! * `AGENT_WORKERS` — worker threads for batched ticks, default 2.

use pphcr_bench::harness::{AgentScenario, AgentSummary};
use pphcr_sim::scenarios::{run_suites, suite_a, suite_b, ScenarioSpec};
use std::process::ExitCode;

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn main() -> ExitCode {
    let agent: u64 = env_or("AGENT_ID", "0").parse().expect("AGENT_ID");
    let suites = env_or("AGENT_SUITES", "ab");
    let defaults = ScenarioSpec::default();
    let spec = ScenarioSpec {
        users: env_or("AGENT_USERS", &defaults.users.to_string()).parse().expect("AGENT_USERS"),
        clips: env_or("AGENT_CLIPS", &defaults.clips.to_string()).parse().expect("AGENT_CLIPS"),
        ticks: env_or("AGENT_TICKS", &defaults.ticks.to_string()).parse().expect("AGENT_TICKS"),
        retrieval_passes: env_or("AGENT_PASSES", &defaults.retrieval_passes.to_string())
            .parse()
            .expect("AGENT_PASSES"),
        arrivals: env_or("AGENT_ARRIVALS", &defaults.arrivals.to_string())
            .parse()
            .expect("AGENT_ARRIVALS"),
        rate_hz: env_or("AGENT_RATE_HZ", &defaults.rate_hz.to_string())
            .parse()
            .expect("AGENT_RATE_HZ"),
        workers: env_or("AGENT_WORKERS", &defaults.workers.to_string())
            .parse()
            .expect("AGENT_WORKERS"),
        seed: env_or("AGENT_SEED", &defaults.seed.to_string()).parse().expect("AGENT_SEED"),
    };
    eprintln!("agent {agent}: suites '{suites}' seed {} users {}", spec.seed, spec.users);
    let reports = match suites.as_str() {
        "a" => suite_a(&spec),
        "b" => suite_b(&spec),
        "ab" => run_suites(&spec),
        other => {
            eprintln!("agent {agent}: unknown AGENT_SUITES {other:?} (use a, b or ab)");
            return ExitCode::FAILURE;
        }
    };
    for r in &reports {
        eprintln!("agent {agent}: {r}");
    }
    let summary = AgentSummary {
        agent,
        seed: spec.seed,
        scenarios: reports
            .into_iter()
            .map(|r| AgentScenario {
                suite: r.suite.to_string(),
                name: r.name.to_string(),
                ops: r.ops,
                elapsed_s: r.elapsed_s,
                hist: r.hist,
            })
            .collect(),
    };
    println!("{}", summary.to_line_json());
    ExitCode::SUCCESS
}
