//! `pphcr-bench` — the process-based benchmark orchestrator (E15).
//!
//! Spawns `PPHCR_BENCH_AGENTS` release-built `bench_agent` processes
//! concurrently, reads one summary line from each agent's stdout,
//! merges the per-agent log2-bucket histograms losslessly, and writes
//! `summary.json` with per-suite throughput plus p50/p95/p99 latency
//! upper bounds. Exits non-zero if an agent fails, a line does not
//! parse, a merged total disagrees with the sum of the agent totals,
//! or any tail triple is not finite and ordered.
//!
//! Environment overrides (all optional):
//! * `PPHCR_BENCH_AGENTS` — agent processes to spawn, default 2.
//! * `PPHCR_BENCH_SEED` — base seed; agent `i` runs with seed
//!   `base ^ i` so the stochastic suites decorrelate, default 42.
//! * `PPHCR_BENCH_OUT` — output path, default `summary.json`.
//! * `PPHCR_BENCH_AGENT_BIN` — path to the agent binary, default the
//!   `bench_agent` sitting next to this executable.
//! * `AGENT_*` — scale knobs forwarded to every agent (see
//!   `bench_agent`'s docs); `AGENT_ID`/`AGENT_SEED` are set per agent.

use pphcr_bench::harness::{merge_agents, summary_json, AgentSummary};
use std::process::{Command, ExitCode, Stdio};

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn agent_bin() -> std::path::PathBuf {
    if let Ok(path) = std::env::var("PPHCR_BENCH_AGENT_BIN") {
        return path.into();
    }
    let mut path = std::env::current_exe().expect("current_exe");
    path.set_file_name(if cfg!(windows) { "bench_agent.exe" } else { "bench_agent" });
    path
}

fn main() -> ExitCode {
    let agents: u64 = env_or("PPHCR_BENCH_AGENTS", "2").parse().expect("PPHCR_BENCH_AGENTS");
    let base_seed: u64 = env_or("PPHCR_BENCH_SEED", "42").parse().expect("PPHCR_BENCH_SEED");
    let out_path = env_or("PPHCR_BENCH_OUT", "summary.json");
    let bin = agent_bin();
    if agents == 0 {
        eprintln!("FAIL: PPHCR_BENCH_AGENTS must be at least 1");
        return ExitCode::FAILURE;
    }

    println!("=== pphcr-bench: {agents} agent processes via {} ===", bin.display());
    let mut children = Vec::new();
    for i in 0..agents {
        let child = Command::new(&bin)
            .env("AGENT_ID", i.to_string())
            .env("AGENT_SEED", (base_seed ^ i).to_string())
            .stdout(Stdio::piped())
            .spawn();
        match child {
            Ok(child) => children.push((i, child)),
            Err(err) => {
                eprintln!("FAIL: could not spawn agent {i} ({}): {err}", bin.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let mut summaries = Vec::new();
    for (i, child) in children {
        let output = child.wait_with_output().expect("wait for agent");
        if !output.status.success() {
            eprintln!("FAIL: agent {i} exited with {:?}", output.status.code());
            return ExitCode::FAILURE;
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let Some(summary) = AgentSummary::from_line_json(&stdout) else {
            eprintln!("FAIL: agent {i} stdout is not a valid summary line: {stdout:?}");
            return ExitCode::FAILURE;
        };
        if summary.agent != i {
            eprintln!("FAIL: agent {i} reported itself as agent {}", summary.agent);
            return ExitCode::FAILURE;
        }
        summaries.push(summary);
    }

    let merged = merge_agents(&summaries);
    if merged.is_empty() {
        eprintln!("FAIL: agents reported no scenarios");
        return ExitCode::FAILURE;
    }
    for cell in &merged {
        // The lossless-merge invariant, re-checked across the process
        // boundary: the merged cell must hold exactly the sum of what
        // the agents reported, and its tails must be ordered.
        let agent_total: u64 = summaries
            .iter()
            .flat_map(|s| &s.scenarios)
            .filter(|s| s.suite == cell.suite && s.name == cell.name)
            .map(|s| s.ops)
            .sum();
        if cell.ops != agent_total || cell.hist.count() != agent_total {
            eprintln!(
                "FAIL: {}/{} merged {} ops but agents reported {agent_total}",
                cell.suite, cell.name, cell.ops
            );
            return ExitCode::FAILURE;
        }
        let Some((p50, p95, p99)) = cell.tails_us() else {
            eprintln!("FAIL: {}/{} has no samples to take quantiles of", cell.suite, cell.name);
            return ExitCode::FAILURE;
        };
        if !(p50 <= p95 && p95 <= p99) {
            eprintln!("FAIL: {}/{} tails disordered: {p50} {p95} {p99}", cell.suite, cell.name);
            return ExitCode::FAILURE;
        }
        println!(
            "suite {} {:<22} agents={} ops={:>8} ops/s={:>10.1} p50<={p50}us p95<={p95}us \
             p99<={p99}us",
            cell.suite, cell.name, cell.agents, cell.ops, cell.ops_per_s
        );
    }

    let doc = summary_json(&summaries, &merged);
    // lint: allow(fsync-free-write) — bench artifact, not durable state; loss on crash is fine
    std::fs::write(&out_path, doc).expect("write summary.json");
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
