//! E14 — the recovery smoke gate: runs the crash-recovery kill-point
//! sweep over a set of chaos seeds and writes `RECOVERY_SMOKE.json`.
//! Exits nonzero if any kill point recovers to anything other than a
//! byte-identical run, or if the clean-restart full replay diverges.
//!
//! Also exercises the real file-backed WAL once per seed: the scripted
//! workload is logged through a `FileWal` with group commit, the file
//! is re-scanned from disk, and the decoded records must match the
//! in-memory log exactly.
//!
//! Environment overrides (all optional):
//! * `E14_SEEDS` — comma-separated chaos seeds, default `1,2,3`.
//! * `E14_OUT` — output path, default `RECOVERY_SMOKE.json`.

use pphcr_core::json::JsonWriter;
use pphcr_core::persist::wal::scan;
use pphcr_core::{DurableEngine, FileWal};
use pphcr_sim::crash::{
    full_replay_identical, genesis_engine, kill_point_sweep, run_uninterrupted, scripted_ops,
};
use std::process::ExitCode;

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

/// Logs the scripted workload through a real file-backed WAL (group
/// commit of 4, force-synced at the end) and checks the bytes on disk
/// scan back to the same records as the in-memory baseline.
fn file_wal_round_trip(seed: u64) -> Result<(), String> {
    let (_, mem_bytes) = run_uninterrupted(seed);
    let path = std::env::temp_dir().join(format!("pphcr-recovery-smoke-{seed}.wal"));
    let wal = FileWal::with_group_commit(&path, 4).map_err(|e| format!("create wal: {e}"))?;
    let mut durable = DurableEngine::new(genesis_engine(seed), wal);
    for op in scripted_ops(seed) {
        durable.apply(op).map_err(|e| format!("durable apply: {e}"))?;
    }
    let (_, mut wal) = durable.into_parts();
    wal.force_sync().map_err(|e| format!("force_sync: {e}"))?;
    let disk_bytes = std::fs::read(&path).map_err(|e| format!("read wal back: {e}"))?;
    let _ = std::fs::remove_file(&path);
    if disk_bytes != mem_bytes {
        return Err(format!(
            "file WAL bytes differ from in-memory log ({} vs {} bytes)",
            disk_bytes.len(),
            mem_bytes.len()
        ));
    }
    let scanned = scan(&disk_bytes).map_err(|e| format!("scan disk wal: {e}"))?;
    if scanned.torn_bytes != 0 {
        return Err(format!("synced WAL reports {} torn bytes", scanned.torn_bytes));
    }
    Ok(())
}

fn main() -> ExitCode {
    let seeds: Vec<u64> = env_or("E14_SEEDS", "1,2,3")
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().expect("seed must be a u64"))
        .collect();
    let out_path = env_or("E14_OUT", "RECOVERY_SMOKE.json");

    let mut failed = false;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("experiment", "e14");
    w.begin_named_array("seeds");
    for &seed in &seeds {
        let report = kill_point_sweep(seed);
        let replay_ok = full_replay_identical(seed);
        let file_wal = file_wal_round_trip(seed);
        let ok = report.all_identical() && replay_ok && file_wal.is_ok();
        failed |= !ok;

        println!(
            "e14 seed={seed} records={} kill_points={} divergences={} full_replay={} file_wal={}",
            report.records,
            report.kill_points,
            report.divergences.len(),
            if replay_ok { "identical" } else { "DIVERGED" },
            match &file_wal {
                Ok(()) => "ok".to_string(),
                Err(e) => format!("FAILED ({e})"),
            },
        );
        for d in &report.divergences {
            eprintln!("e14 seed={seed} DIVERGENCE: {d}");
        }

        w.begin_object();
        w.field_u64("seed", seed)
            .field_u64("records", report.records as u64)
            .field_u64("kill_points", report.kill_points as u64)
            .field_u64("divergences", report.divergences.len() as u64)
            .field_bool("full_replay_identical", replay_ok)
            .field_bool("file_wal_ok", file_wal.is_ok())
            .field_bool("ok", ok);
        w.end_object();
    }
    w.end_array();
    w.field_bool("ok", !failed);
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    // lint: allow(fsync-free-write) — CI artifact, not durable state; loss on crash is fine
    if let Err(e) = std::fs::write(&out_path, doc) {
        eprintln!("e14: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if failed {
        eprintln!("e14: FAILED — recovery is not byte-identical");
        return ExitCode::FAILURE;
    }
    println!("e14: every kill point recovered byte-identically across {} seeds", seeds.len());
    ExitCode::SUCCESS
}
