//! E16 — shard scaling curve for the multi-process deployment.
//!
//! Runs the `pphcr-shard` differential workload through an N-process
//! sharded deployment (router + `shard_agent` processes) for each N in
//! `E16_SHARDS`, verifying on every round that the merged event stream
//! and merged `ObsSnapshot` JSON are byte-identical to the
//! single-process baseline, and recording best-of-`E16_ROUNDS` wall
//! time per N. The point of the curve is the paper's broadcaster-scale
//! claim: personalization must scale out *without changing a single
//! observable byte*, so throughput and identity are measured by the
//! same run.
//!
//! Two suites run back to back:
//!
//! 1. **Differential workload** — the mixed per-user script the
//!    identity tests use. Dominated by single-user commands that cost
//!    one router round-trip each whatever the shard count, so its
//!    curve is flat: it measures the *overhead* of sharding on
//!    routed traffic, not the win.
//! 2. **Tick-heavy window** — an E13-style commuter fleet where only
//!    the batch-tick window is timed (`workers: Some(1)`, so process
//!    sharding is the only parallelism in play). The per-tick work is
//!    linear in the ticked users and splits across shards, so on a
//!    host with ≥N free cores the window shrinks towards 1/N. On a
//!    single-core host (the artifact records `host_cores`) no overlap
//!    is physically possible and the curve measures pure sharding
//!    overhead instead — identity still has to hold either way.
//!
//! Environment overrides (all optional):
//! * `E16_SHARDS` — comma-separated shard counts, default `1,2,4`.
//! * `E16_SEED` — workload seed, default 1.
//! * `E16_ROUNDS` — rounds per N (best-of), default 3.
//! * `E16_HEAVY_USERS` / `E16_HEAVY_TICKS` / `E16_HEAVY_ROUNDS` —
//!   tick-heavy fleet size, window length, best-of rounds (default
//!   24 / 12 / 2).
//! * `E16_OUT` — JSON artifact path, default `BENCH_e16.json`.
//! * `E16_AGENT_BIN` — path to `shard_agent`, default the binary next
//!   to this executable (build with `cargo build --release -p
//!   pphcr-shard` first).
//!
//! Exits non-zero on any identity divergence or spawn failure.

use pphcr_obs::timing::stopwatch;
use pphcr_shard::{
    commands, run_single, run_single_windowed, tick_heavy, ProcessShard, Router, SingleRun,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn agent_bin() -> PathBuf {
    if let Ok(path) = std::env::var("E16_AGENT_BIN") {
        return path.into();
    }
    let mut path = std::env::current_exe().expect("current_exe");
    path.set_file_name(if cfg!(windows) { "shard_agent.exe" } else { "shard_agent" });
    path
}

struct Row {
    shards: usize,
    best_ms: f64,
    ops_per_s: f64,
    identical: bool,
}

/// Runs `setup` untimed, then `window` timed, through a fresh
/// `shards`-process deployment. Pass an empty `setup` to time the
/// whole script.
fn run_once(
    bin: &PathBuf,
    setup: &[pphcr_core::EngineCommand],
    window: &[pphcr_core::EngineCommand],
    shards: usize,
) -> Result<(SingleRun, f64), String> {
    let spawned: Result<Vec<ProcessShard>, _> =
        (0..shards).map(|_| ProcessShard::spawn(bin)).collect();
    let mut router = Router::new(spawned.map_err(|e| format!("spawn: {e}"))?)
        .map_err(|e| format!("router: {e}"))?;
    let mut lines = Vec::new();
    for cmd in setup {
        lines.extend(router.apply(cmd).map_err(|e| format!("apply: {e}"))?);
    }
    let started = stopwatch();
    for cmd in window {
        lines.extend(router.apply(cmd).map_err(|e| format!("apply: {e}"))?);
    }
    let elapsed_ms = started.elapsed_s() * 1e3;
    let obs_json = router.merged_obs().map_err(|e| format!("merge: {e}"))?.to_json();
    Ok((SingleRun { lines, obs_json }, elapsed_ms))
}

fn main() -> ExitCode {
    let shard_counts: Vec<usize> = env_or("E16_SHARDS", "1,2,4")
        .split(',')
        .map(|s| s.trim().parse().expect("E16_SHARDS"))
        .collect();
    let seed: u64 = env_or("E16_SEED", "1").parse().expect("E16_SEED");
    let rounds: usize = env_or("E16_ROUNDS", "3").parse().expect("E16_ROUNDS");
    let out_path = env_or("E16_OUT", "BENCH_e16.json");
    let bin = agent_bin();

    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let ops = commands(seed);
    let baseline_started = stopwatch();
    let baseline = run_single(&ops);
    let baseline_ms = baseline_started.elapsed_s() * 1e3;
    println!(
        "=== E16: shard scaling, seed {seed}, {} ops, {} event lines, {host_cores} host cores, agent {} ===",
        ops.len(),
        baseline.lines.len(),
        bin.display()
    );
    println!("in-process baseline: {baseline_ms:.1} ms");
    println!("{:>6}  {:>10}  {:>10}  {:>9}", "shards", "best ms", "ops/s", "identity");

    let mut rows = Vec::new();
    let mut all_ok = true;
    for &n in &shard_counts {
        let mut best_ms = f64::INFINITY;
        let mut identical = true;
        for _ in 0..rounds.max(1) {
            match run_once(&bin, &[], &ops, n) {
                Ok((run, elapsed_ms)) => {
                    best_ms = best_ms.min(elapsed_ms);
                    identical &= run.lines == baseline.lines && run.obs_json == baseline.obs_json;
                }
                Err(msg) => {
                    eprintln!("FAIL: {n}-shard round: {msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let ops_per_s = ops.len() as f64 / (best_ms / 1e3);
        println!(
            "{n:>6}  {best_ms:>10.1}  {ops_per_s:>10.0}  {:>9}",
            if identical { "identical" } else { "DIVERGED" }
        );
        all_ok &= identical;
        rows.push(Row { shards: n, best_ms, ops_per_s, identical });
    }

    let heavy_users: u64 = env_or("E16_HEAVY_USERS", "24").parse().expect("E16_HEAVY_USERS");
    let heavy_ticks: u64 = env_or("E16_HEAVY_TICKS", "12").parse().expect("E16_HEAVY_TICKS");
    let heavy_rounds: usize = env_or("E16_HEAVY_ROUNDS", "2").parse().expect("E16_HEAVY_ROUNDS");
    let (setup, window) = tick_heavy(seed, heavy_users, heavy_ticks);
    let (heavy_baseline, heavy_baseline_ms) = run_single_windowed(&setup, &window);
    println!(
        "=== E16b: tick-heavy window, {heavy_users} commuters, {heavy_ticks}+1 ticks, {} setup ops ===",
        setup.len()
    );
    println!(
        "in-process window: {heavy_baseline_ms:.1} ms ({} event lines)",
        heavy_baseline.lines.len()
    );
    println!("{:>6}  {:>10}  {:>8}  {:>9}", "shards", "window ms", "speedup", "identity");

    let mut heavy_rows = Vec::new();
    for &n in &shard_counts {
        let mut best_ms = f64::INFINITY;
        let mut identical = true;
        for _ in 0..heavy_rounds.max(1) {
            match run_once(&bin, &setup, &window, n) {
                Ok((run, elapsed_ms)) => {
                    best_ms = best_ms.min(elapsed_ms);
                    identical &= run.lines == heavy_baseline.lines
                        && run.obs_json == heavy_baseline.obs_json;
                }
                Err(msg) => {
                    eprintln!("FAIL: tick-heavy {n}-shard round: {msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let speedup = heavy_baseline_ms / best_ms;
        println!(
            "{n:>6}  {best_ms:>10.1}  {speedup:>7.2}x  {:>9}",
            if identical { "identical" } else { "DIVERGED" }
        );
        all_ok &= identical;
        heavy_rows.push(Row { shards: n, best_ms, ops_per_s: speedup, identical });
    }

    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\n  \"seed\": {seed},\n  \"host_cores\": {host_cores},\n  \"ops\": {},\n  \"lines\": {},\n  \"rounds\": {rounds},\n  \"baseline_ms\": {baseline_ms:.3},\n  \"points\": [",
        ops.len(),
        baseline.lines.len(),
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        let _ = write!(
            doc,
            "\n    {{\"shards\": {}, \"best_ms\": {:.3}, \"ops_per_s\": {:.1}, \"identical\": {}}}",
            r.shards, r.best_ms, r.ops_per_s, r.identical
        );
    }
    let _ = write!(
        doc,
        "\n  ],\n  \"heavy\": {{\n    \"users\": {heavy_users},\n    \"ticks\": {heavy_ticks},\n    \"rounds\": {heavy_rounds},\n    \"baseline_window_ms\": {heavy_baseline_ms:.3},\n    \"points\": ["
    );
    for (i, r) in heavy_rows.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        let _ = write!(
            doc,
            "\n      {{\"shards\": {}, \"window_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}",
            r.shards, r.best_ms, r.ops_per_s, r.identical
        );
    }
    doc.push_str("\n    ]\n  }\n}\n");
    // lint: allow(fsync-free-write) — bench artifact, not durable state; loss on crash is fine
    std::fs::write(&out_path, doc).expect("write BENCH_e16.json");
    println!("wrote {out_path}");

    if all_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: at least one shard count diverged from the single-process run");
        ExitCode::FAILURE
    }
}
