//! E13 — writes `BENCH_e13.json`: scan-vs-index retrieval throughput
//! over a months-deep archive, batch-tick worker scaling, and the
//! observability overhead check (instrumented vs bare engine on the
//! same window). Gates on the index beating the linear scan at the
//! largest archive point and on the obs layer staying under its
//! overhead budget (the CI perf-smoke job fails on either regression).
//!
//! Environment overrides (all optional):
//! * `E13_GRID` — comma-separated `CLIPSxUSERS` retrieval points,
//!   default `1000x1000,10000x1000`.
//! * `E13_TICK_USERS` — commuters for the tick-scaling half, default 24.
//! * `E13_WORKERS` — comma-separated worker counts, default `1,2,8`.
//! * `E13_MIN_SPEEDUP` — gate on the largest grid point, default 1.0.
//! * `E13_OUT` — output path, default `BENCH_e13.json`.
//! * `E13_OBS_ROUNDS` — best-of rounds per obs variant, default 3.
//! * `E13_MAX_OVERHEAD_PCT` — obs overhead gate, default 3.0.
//! * `E13_OBS_SLACK_S` — absolute slack added to the overhead gate so
//!   sub-noise wall times cannot fake a percentage, default 0.02.
//! * `E13_OBS_OUT` — snapshot artifact path, default `OBS_SNAPSHOT.json`.

use pphcr_core::json::JsonWriter;
use pphcr_sim::experiments::{e13_obs_overhead, e13_retrieval, e13_tick_scaling};
use std::process::ExitCode;

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn parse_grid(spec: &str) -> Vec<(usize, usize)> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            let (c, u) = s.trim().split_once('x').expect("grid point must be CLIPSxUSERS");
            (c.parse().expect("clips"), u.parse().expect("users"))
        })
        .collect()
}

fn main() -> ExitCode {
    let grid = parse_grid(&env_or("E13_GRID", "1000x1000,10000x1000"));
    let tick_users: u64 = env_or("E13_TICK_USERS", "24").parse().expect("E13_TICK_USERS");
    let workers: Vec<usize> = env_or("E13_WORKERS", "1,2,8")
        .split(',')
        .map(|w| w.trim().parse().expect("E13_WORKERS"))
        .collect();
    let min_speedup: f64 = env_or("E13_MIN_SPEEDUP", "1.0").parse().expect("E13_MIN_SPEEDUP");
    let out_path = env_or("E13_OUT", "BENCH_e13.json");
    let obs_rounds: usize = env_or("E13_OBS_ROUNDS", "3").parse().expect("E13_OBS_ROUNDS");
    let max_overhead_pct: f64 =
        env_or("E13_MAX_OVERHEAD_PCT", "3.0").parse().expect("E13_MAX_OVERHEAD_PCT");
    let obs_slack_s: f64 = env_or("E13_OBS_SLACK_S", "0.02").parse().expect("E13_OBS_SLACK_S");
    let obs_out = env_or("E13_OBS_OUT", "OBS_SNAPSHOT.json");

    println!("=== E13: retrieval index + sharded batch ticks ===");
    let retrieval = e13_retrieval(&grid, 42);
    for row in &retrieval {
        println!("{row}");
    }
    let ticks = e13_tick_scaling(tick_users, &workers);
    for row in &ticks {
        println!("{row}");
    }
    let obs = e13_obs_overhead(tick_users, *workers.last().unwrap_or(&1), obs_rounds);
    println!("{obs}");
    // lint: allow(fsync-free-write) — bench artifact, not durable state; loss on crash is fine
    std::fs::write(&obs_out, format!("{}\n", obs.snapshot_json)).expect("write OBS_SNAPSHOT.json");
    println!("wrote {obs_out}");

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("experiment", "e13");
    w.begin_named_array("retrieval");
    for r in &retrieval {
        w.begin_object();
        w.field_u64("clips", r.clips as u64)
            .field_u64("users", r.users as u64)
            .field_f64("scan_s", r.scan_s)
            .field_f64("indexed_s", r.indexed_s)
            .field_f64("speedup", r.speedup)
            .field_u64("candidates", r.candidates);
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("tick_scaling");
    for r in &ticks {
        w.begin_object();
        w.field_u64("users", r.users)
            .field_u64("workers", r.workers as u64)
            .field_f64("seconds", r.seconds)
            .field_f64("user_ticks_per_s", r.user_ticks_per_s)
            .field_u64("events", r.events);
        w.end_object();
    }
    w.end_array();
    w.begin_named_object("obs_overhead");
    w.field_u64("users", obs.users)
        .field_u64("workers", obs.workers as u64)
        .field_u64("rounds", obs.rounds as u64)
        .field_f64("bare_s", obs.bare_s)
        .field_f64("instrumented_s", obs.instrumented_s)
        .field_f64("overhead_pct", obs.overhead_pct)
        .field_u64("events", obs.events);
    w.end_object();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    // lint: allow(fsync-free-write) — bench artifact, not durable state; loss on crash is fine
    std::fs::write(&out_path, doc).expect("write BENCH_e13.json");
    println!("wrote {out_path}");

    // The gate: at the largest archive the index must not lose to the
    // scan (CI runs with the default 1.0; the committed artifact is
    // generated at full scale where the margin is much wider).
    let largest = retrieval.iter().max_by_key(|r| r.clips).expect("non-empty grid");
    if largest.speedup < min_speedup {
        eprintln!(
            "FAIL: indexed retrieval speedup {:.2}x at {} clips is below the {:.2}x gate",
            largest.speedup, largest.clips, min_speedup
        );
        return ExitCode::FAILURE;
    }

    // The observability gate: the instrumented engine may not cost
    // more than `max_overhead_pct` over the bare one, with a small
    // absolute slack so sub-noise wall times cannot fake a percentage.
    let budget_s = obs.bare_s * (1.0 + max_overhead_pct / 100.0) + obs_slack_s;
    if obs.instrumented_s > budget_s {
        eprintln!(
            "FAIL: instrumented window {:.3}s exceeds bare {:.3}s by more than {:.1}% (+{:.0}ms \
             slack)",
            obs.instrumented_s,
            obs.bare_s,
            max_overhead_pct,
            obs_slack_s * 1_000.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
