//! E13 — writes `BENCH_e13.json`: scan-vs-index retrieval throughput
//! over a months-deep archive plus batch-tick worker scaling, then
//! gates on the index actually beating the linear scan at the largest
//! archive point (the CI perf-smoke job fails on a regression).
//!
//! Environment overrides (all optional):
//! * `E13_GRID` — comma-separated `CLIPSxUSERS` retrieval points,
//!   default `1000x1000,10000x1000`.
//! * `E13_TICK_USERS` — commuters for the tick-scaling half, default 24.
//! * `E13_WORKERS` — comma-separated worker counts, default `1,2,8`.
//! * `E13_MIN_SPEEDUP` — gate on the largest grid point, default 1.0.
//! * `E13_OUT` — output path, default `BENCH_e13.json`.

use pphcr_core::json::JsonWriter;
use pphcr_sim::experiments::{e13_retrieval, e13_tick_scaling};
use std::process::ExitCode;

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn parse_grid(spec: &str) -> Vec<(usize, usize)> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            let (c, u) = s.trim().split_once('x').expect("grid point must be CLIPSxUSERS");
            (c.parse().expect("clips"), u.parse().expect("users"))
        })
        .collect()
}

fn main() -> ExitCode {
    let grid = parse_grid(&env_or("E13_GRID", "1000x1000,10000x1000"));
    let tick_users: u64 = env_or("E13_TICK_USERS", "24").parse().expect("E13_TICK_USERS");
    let workers: Vec<usize> = env_or("E13_WORKERS", "1,2,8")
        .split(',')
        .map(|w| w.trim().parse().expect("E13_WORKERS"))
        .collect();
    let min_speedup: f64 = env_or("E13_MIN_SPEEDUP", "1.0").parse().expect("E13_MIN_SPEEDUP");
    let out_path = env_or("E13_OUT", "BENCH_e13.json");

    println!("=== E13: retrieval index + sharded batch ticks ===");
    let retrieval = e13_retrieval(&grid, 42);
    for row in &retrieval {
        println!("{row}");
    }
    let ticks = e13_tick_scaling(tick_users, &workers);
    for row in &ticks {
        println!("{row}");
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("experiment", "e13");
    w.begin_named_array("retrieval");
    for r in &retrieval {
        w.begin_object();
        w.field_u64("clips", r.clips as u64)
            .field_u64("users", r.users as u64)
            .field_f64("scan_s", r.scan_s)
            .field_f64("indexed_s", r.indexed_s)
            .field_f64("speedup", r.speedup)
            .field_u64("candidates", r.candidates);
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("tick_scaling");
    for r in &ticks {
        w.begin_object();
        w.field_u64("users", r.users)
            .field_u64("workers", r.workers as u64)
            .field_f64("seconds", r.seconds)
            .field_f64("user_ticks_per_s", r.user_ticks_per_s)
            .field_u64("events", r.events);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    std::fs::write(&out_path, doc).expect("write BENCH_e13.json");
    println!("wrote {out_path}");

    // The gate: at the largest archive the index must not lose to the
    // scan (CI runs with the default 1.0; the committed artifact is
    // generated at full scale where the margin is much wider).
    let largest = retrieval.iter().max_by_key(|r| r.clips).expect("non-empty grid");
    if largest.speedup < min_speedup {
        eprintln!(
            "FAIL: indexed retrieval speedup {:.2}x at {} clips is below the {:.2}x gate",
            largest.speedup, largest.clips, min_speedup
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
