//! E13 — writes `BENCH_e13.json`: scan-vs-index retrieval throughput
//! over a months-deep archive, batch-tick worker scaling, and the
//! observability overhead check (instrumented vs bare engine on the
//! same window). Gates on the index beating the linear scan at the
//! largest archive point and on the obs layer staying under its
//! overhead budget (the CI perf-smoke job fails on either regression).
//!
//! Environment overrides (all optional):
//! * `E13_GRID` — comma-separated `CLIPSxUSERS` retrieval points,
//!   default `1000x1000,10000x1000`.
//! * `E13_TICK_USERS` — commuters for the tick-scaling half, default 24.
//! * `E13_TICK_GRID` — comma-separated fleet sizes for the
//!   population-scale grid, default `1000,10000,100000`.
//! * `E13_TICK_WINDOW` — batched ticks per grid cell, default 50.
//! * `E13_WORKERS` — comma-separated worker counts, default `1,2,8`.
//! * `E13_MIN_SPEEDUP` — gate on the largest grid point, default 1.0.
//! * `E13_MIN_TICK_SPEEDUP` — scaling-efficiency floor at the gate
//!   fleet: measured user-ticks/s speedup at the highest worker count
//!   over 1 worker when the host has that many cores, else the Amdahl
//!   bound implied by the measured warm-phase parallel fraction.
//!   Default 3.0.
//! * `E13_GATE_FLEET` — the fleet size the scaling gate evaluates,
//!   default 10000 (the acceptance point); falls back to the largest
//!   fleet actually in the grid. Larger fleets still run and land in
//!   the artifact — the 100k row's lower warm share (per-user map
//!   locality in the commit loop) is tracked as the next scaling rung,
//!   not gated here.
//! * `E13_ROUNDS` — timed rounds per retrieval pass and per
//!   tick-scaling row (one extra warmup run is always taken first and
//!   discarded; the minimum of the timed rounds is reported), default 3.
//! * `E13_OUT` — output path, default `BENCH_e13.json`.
//! * `E13_OBS_ROUNDS` — best-of rounds per obs variant, default 3.
//! * `E13_MAX_OVERHEAD_PCT` — obs overhead gate, default 3.0.
//! * `E13_OBS_SLACK_S` — absolute slack added to the overhead gate so
//!   sub-noise wall times cannot fake a percentage, default 0.02.
//! * `E13_OBS_OUT` — snapshot artifact path, default `OBS_SNAPSHOT.json`.

use pphcr_core::json::JsonWriter;
use pphcr_sim::experiments::{e13_obs_overhead, e13_retrieval, e13_tick_grid, e13_tick_scaling};
use std::process::ExitCode;

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn parse_grid(spec: &str) -> Vec<(usize, usize)> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            let (c, u) = s.trim().split_once('x').expect("grid point must be CLIPSxUSERS");
            (c.parse().expect("clips"), u.parse().expect("users"))
        })
        .collect()
}

fn main() -> ExitCode {
    let grid = parse_grid(&env_or("E13_GRID", "1000x1000,10000x1000"));
    let tick_users: u64 = env_or("E13_TICK_USERS", "24").parse().expect("E13_TICK_USERS");
    let workers: Vec<usize> = env_or("E13_WORKERS", "1,2,8")
        .split(',')
        .map(|w| w.trim().parse().expect("E13_WORKERS"))
        .collect();
    let min_speedup: f64 = env_or("E13_MIN_SPEEDUP", "1.0").parse().expect("E13_MIN_SPEEDUP");
    let tick_grid: Vec<u64> = env_or("E13_TICK_GRID", "1000,10000,100000")
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().expect("E13_TICK_GRID"))
        .collect();
    let tick_window: u64 = env_or("E13_TICK_WINDOW", "50").parse().expect("E13_TICK_WINDOW");
    let min_tick_speedup: f64 =
        env_or("E13_MIN_TICK_SPEEDUP", "3.0").parse().expect("E13_MIN_TICK_SPEEDUP");
    let gate_fleet: u64 = env_or("E13_GATE_FLEET", "10000").parse().expect("E13_GATE_FLEET");
    let rounds: usize = env_or("E13_ROUNDS", "3").parse().expect("E13_ROUNDS");
    let out_path = env_or("E13_OUT", "BENCH_e13.json");
    let obs_rounds: usize = env_or("E13_OBS_ROUNDS", "3").parse().expect("E13_OBS_ROUNDS");
    let max_overhead_pct: f64 =
        env_or("E13_MAX_OVERHEAD_PCT", "3.0").parse().expect("E13_MAX_OVERHEAD_PCT");
    let obs_slack_s: f64 = env_or("E13_OBS_SLACK_S", "0.02").parse().expect("E13_OBS_SLACK_S");
    let obs_out = env_or("E13_OBS_OUT", "OBS_SNAPSHOT.json");

    println!("=== E13: retrieval index + sharded batch ticks ===");
    let retrieval = e13_retrieval(&grid, 42, rounds);
    for row in &retrieval {
        println!("{row}");
    }
    let ticks = e13_tick_scaling(tick_users, &workers, rounds);
    for row in &ticks {
        println!("{row}");
    }
    let grid_rows = e13_tick_grid(&tick_grid, &workers, tick_window);
    for row in &grid_rows {
        println!("{row}");
    }
    let obs = e13_obs_overhead(tick_users, *workers.last().unwrap_or(&1), obs_rounds);
    println!("{obs}");
    // lint: allow(fsync-free-write) — bench artifact, not durable state; loss on crash is fine
    std::fs::write(&obs_out, format!("{}\n", obs.snapshot_json)).expect("write OBS_SNAPSHOT.json");
    println!("wrote {obs_out}");

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("experiment", "e13");
    w.field_u64("rounds", rounds as u64);
    w.begin_named_array("retrieval");
    for r in &retrieval {
        w.begin_object();
        w.field_u64("clips", r.clips as u64)
            .field_u64("users", r.users as u64)
            .field_f64("scan_s", r.scan_s)
            .field_f64("indexed_s", r.indexed_s)
            .field_f64("speedup", r.speedup)
            .field_u64("candidates", r.candidates)
            .field_str("dispatch", r.dispatch.label());
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("tick_scaling");
    for r in &ticks {
        w.begin_object();
        w.field_u64("users", r.users)
            .field_u64("workers", r.workers as u64)
            .field_f64("seconds", r.seconds)
            .field_f64("user_ticks_per_s", r.user_ticks_per_s)
            .field_u64("events", r.events);
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("tick_grid");
    for r in &grid_rows {
        w.begin_object();
        w.field_u64("users", r.users)
            .field_u64("workers", r.workers as u64)
            .field_u64("ticks", r.ticks)
            .field_f64("seconds", r.seconds)
            .field_f64("user_ticks_per_s", r.user_ticks_per_s)
            .field_f64("warm_s", r.warm_s)
            .field_f64("parallel_fraction", r.parallel_fraction)
            .field_u64("cache_misses", r.cache_misses)
            .field_u64("warm_serves", r.warm_serves)
            .field_u64("cross_tick_hits", r.cross_tick_hits)
            .field_u64("events", r.events);
        w.end_object();
    }
    w.end_array();
    w.begin_named_object("obs_overhead");
    w.field_u64("users", obs.users)
        .field_u64("workers", obs.workers as u64)
        .field_u64("rounds", obs.rounds as u64)
        .field_f64("bare_s", obs.bare_s)
        .field_f64("instrumented_s", obs.instrumented_s)
        .field_f64("overhead_pct", obs.overhead_pct)
        .field_u64("events", obs.events);
    w.end_object();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    // lint: allow(fsync-free-write) — bench artifact, not durable state; loss on crash is fine
    std::fs::write(&out_path, doc).expect("write BENCH_e13.json");
    println!("wrote {out_path}");

    // The gate: at the largest archive the index must not lose to the
    // scan (CI runs with the default 1.0; the committed artifact is
    // generated at full scale where the margin is much wider).
    let largest = retrieval.iter().max_by_key(|r| r.clips).expect("non-empty grid");
    if largest.speedup < min_speedup {
        eprintln!(
            "FAIL: indexed retrieval speedup {:.2}x at {} clips is below the {:.2}x gate",
            largest.speedup, largest.clips, min_speedup
        );
        return ExitCode::FAILURE;
    }

    // The scaling-efficiency gate, at the gate fleet (default 10k; the
    // largest fleet in the grid when 10k is absent). On a host with as
    // many cores as the widest worker count the measured user-ticks/s
    // speedup must clear the floor directly; on narrower hosts (CI
    // runners, laptops) thread counts cannot speed anything up, so the
    // gate falls back to the Amdahl bound implied by the measured
    // warm-phase share: speedup(w) = 1/((1-p) + p/w).
    let gate_point = if tick_grid.contains(&gate_fleet) {
        Some(gate_fleet)
    } else {
        tick_grid.iter().max().copied()
    };
    if let Some(largest_fleet) = gate_point {
        let fleet_rows: Vec<_> = grid_rows.iter().filter(|r| r.users == largest_fleet).collect();
        let base = fleet_rows.iter().find(|r| r.workers == 1);
        let widest = fleet_rows.iter().max_by_key(|r| r.workers);
        if let (Some(base), Some(widest)) = (base, widest) {
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
            let measured = widest.user_ticks_per_s / base.user_ticks_per_s.max(1e-9);
            let p = base.parallel_fraction;
            let amdahl = 1.0 / ((1.0 - p) + p / widest.workers as f64);
            if cores >= widest.workers {
                if measured < min_tick_speedup {
                    eprintln!(
                        "FAIL: {} workers reach {measured:.2}x over 1 worker at {largest_fleet} \
                         users — below the {min_tick_speedup:.2}x scaling floor",
                        widest.workers
                    );
                    return ExitCode::FAILURE;
                }
            } else if amdahl < min_tick_speedup {
                eprintln!(
                    "FAIL: warm-phase parallel fraction {p:.3} at {largest_fleet} users bounds \
                     the {}-worker speedup to {amdahl:.2}x — below the {min_tick_speedup:.2}x \
                     scaling floor (host has {cores} cores, measured {measured:.2}x)",
                    widest.workers
                );
                return ExitCode::FAILURE;
            }
            // The cross-tick floor: the component-wise keys must keep
            // at least one ranked list alive across ticks under churn —
            // the old `now`-keyed cache pinned this counter at zero.
            if base.cross_tick_hits == 0 {
                eprintln!(
                    "FAIL: no cross-tick cache hits at {largest_fleet} users — candidate cache \
                     entries are not surviving across ticks"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // The observability gate: the instrumented engine may not cost
    // more than `max_overhead_pct` over the bare one, with a small
    // absolute slack so sub-noise wall times cannot fake a percentage.
    let budget_s = obs.bare_s * (1.0 + max_overhead_pct / 100.0) + obs_slack_s;
    if obs.instrumented_s > budget_s {
        eprintln!(
            "FAIL: instrumented window {:.3}s exceeds bare {:.3}s by more than {:.1}% (+{:.0}ms \
             slack)",
            obs.instrumented_s,
            obs.bare_s,
            max_overhead_pct,
            obs_slack_s * 1_000.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
