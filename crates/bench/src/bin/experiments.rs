//! Prints every experiment table of `DESIGN.md` (E1–E12) without
//! Criterion timing noise. `EXPERIMENTS.md` records this output.
//!
//! ```text
//! cargo run -p pphcr-bench --release --bin experiments
//! ```

use pphcr_geo::TimeSpan;
use pphcr_sim::experiments as exp;

fn main() {
    println!("PPHCR experiment suite — reproduction of EDBT 2017 paper artifacts");
    println!("{:=<78}", "");

    println!("\n=== E1 (Fig. 1): seamless replacement — seam quality at 48 kHz ===");
    for row in exp::e1_seam_quality(48_000, &[10, 60, 300, 900]) {
        println!("{row}");
    }

    println!("\n=== E2 (Fig. 2): proactive trip fill — 30 commuters × 300 clips ===");
    let world = exp::trip_world(30, 300, 42);
    for row in exp::e2_trip_fill(&world) {
        println!("{row}");
    }

    println!("\n=== E3 (Fig. 3): pipeline throughput — 110 podcasts/day, 100 users ===");
    for row in exp::e3_pipeline(110, 100, 7) {
        println!("{row}");
    }

    println!("\n=== E4 (Fig. 4): skip propensity — 10 commuters × 15 mornings × 8 items ===");
    for row in exp::e4_skip_propensity(10, 15, 8, 7) {
        println!("{row}");
    }

    println!("\n=== E5 (Fig. 5): trajectory compaction — 7 days of commuting ===");
    let (rows, stays) = exp::e5_trajectory(7, &[5.0, 15.0, 50.0, 150.0], 3);
    for row in rows {
        println!("{row}");
    }
    println!("{stays}");

    println!("\n=== E6 (Fig. 6): editorial injection ===");
    println!("{}", exp::e6_injection(1));

    println!("\n=== E7: network cost — 1 listening hour, p=0.2 ===");
    let (rows, crossovers) =
        exp::e7_netcost(&[100, 1_000, 10_000, 100_000], 0.2, TimeSpan::hours(1));
    for row in rows {
        println!("{row}");
    }
    println!("crossover audiences (hybrid beats all-IP):");
    for (p, n) in crossovers {
        match n {
            Some(n) => println!("  p={p:.2} -> {n} listeners"),
            None => println!("  p={p:.2} -> never"),
        }
    }

    println!("\n=== E8: classifier accuracy vs ASR WER × training size ===");
    for row in exp::e8_classifier(&[0.0, 0.1, 0.2, 0.35, 0.5], &[2, 8, 32], 4, 5) {
        println!("{row}");
    }

    println!("\n=== E9: compound-weight sweep ===");
    let world9 = exp::trip_world(30, 300, 99);
    for row in exp::e9_weight_sweep(&world9, &[0.0, 0.25, 0.5, 0.55, 0.75, 1.0]) {
        println!("{row}");
    }

    println!("\n=== E10: distraction-aware scheduling ablation ===");
    let world10 = exp::trip_world(30, 300, 12);
    for row in exp::e10_distraction(&world10) {
        println!("{row}");
    }

    println!("\n=== E11: ensemble diversity sweep (MMR λ) ===");
    let world11 = exp::trip_world(30, 300, 5);
    for row in exp::e11_ensemble(&world11, &[1.0, 0.8, 0.6, 0.4, 0.2, 0.0], 6) {
        println!("{row}");
    }

    println!("\n=== E12: chaos resilience — delivery under a hostile wire ===");
    for row in exp::e12_resilience(5, 4, 42) {
        println!("{row}");
    }

    println!("\n=== E13: retrieval index + sharded batch ticks ===");
    for row in exp::e13_retrieval(&[(1_000, 200), (10_000, 200)], 42, 2) {
        println!("{row}");
    }
    for row in exp::e13_tick_scaling(12, &[1, 2, 8], 2) {
        println!("{row}");
    }
    println!("{}", exp::e13_obs_overhead(12, 8, 2));

    println!("\n{:=<78}", "");
    println!("done.");
}
