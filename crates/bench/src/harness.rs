//! The process-based bench harness behind the `pphcr-bench` binary.
//!
//! An in-process benchmark shares its allocator, its warmed caches and
//! its panic domain with the code it measures; the numbers it prints
//! inherit all three. This harness spawns each agent as its own
//! release process (`bench_agent`), lets it run the scenario suites
//! against a private [`Engine`](pphcr_core::Engine), and reads back one
//! line of JSON per agent from stdout. Histograms cross the process
//! boundary in the exact log2-bucket wire form
//! ([`Histogram::to_wire_json`]), so the parent's merge is the same
//! lossless [`Histogram::merge_from`] the obs layer proves commutative
//! — merged totals are the sums of the agent totals by construction,
//! and p50/p95/p99 come from [`Histogram::quantile_upper_bound`] over
//! the merged buckets (each an upper bound within its power-of-two
//! bucket, i.e. under 2x of the true quantile).
//!
//! The agent line grammar is fixed and machine-generated, so decoding
//! is strict: known keys in a known order, digits-only integers (an
//! `f64` detour would corrupt saturated `u64` sums), and the embedded
//! histogram handed verbatim to [`Histogram::from_wire_json`].

use pphcr_core::json::JsonWriter;
use pphcr_obs::Histogram;
use std::fmt::Write as _;

/// One scenario's result inside an agent summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentScenario {
    /// Suite tag (`"A"` or `"B"`).
    pub suite: String,
    /// Scenario name; the merge key together with `suite`.
    pub name: String,
    /// Operations recorded into `hist`.
    pub ops: u64,
    /// Scenario wall time in this agent, seconds.
    pub elapsed_s: f64,
    /// Per-operation latency histogram, microseconds.
    pub hist: Histogram,
}

/// Everything one agent process reports: its identity, its seed and
/// every scenario it ran, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentSummary {
    /// Agent index assigned by the orchestrator.
    pub agent: u64,
    /// The seed this agent's stochastic scenarios drew from.
    pub seed: u64,
    /// Scenario results in execution order.
    pub scenarios: Vec<AgentScenario>,
}

impl AgentSummary {
    /// Encodes the summary as the single stdout line the orchestrator
    /// reads. Scenario labels are restricted to ASCII without `"` or
    /// `\` (ours are identifiers), so no escaping is ever needed and
    /// the line stays greppable.
    #[must_use]
    pub fn to_line_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"agent\":{},\"seed\":{},\"scenarios\":[", self.agent, self.seed);
        for (i, s) in self.scenarios.iter().enumerate() {
            debug_assert!(label_ok(&s.suite) && label_ok(&s.name), "labels must be plain ASCII");
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"suite\":\"{}\",\"name\":\"{}\",\"ops\":{},\"elapsed_s\":{:.6},\"hist\":{}}}",
                s.suite,
                s.name,
                s.ops,
                s.elapsed_s,
                s.hist.to_wire_json()
            );
        }
        out.push_str("]}");
        out
    }

    /// Decodes a line produced by [`Self::to_line_json`]. Returns
    /// `None` on any deviation from the grammar — wrong key order,
    /// non-finite or negative wall time, a histogram whose totals
    /// disagree with its buckets, an `ops` count that contradicts the
    /// histogram, or trailing garbage.
    #[must_use]
    pub fn from_line_json(input: &str) -> Option<AgentSummary> {
        let mut p = Cursor { bytes: input.trim().as_bytes(), pos: 0 };
        p.expect(b"{\"agent\":")?;
        let agent = p.integer()?;
        p.expect(b",\"seed\":")?;
        let seed = p.integer()?;
        p.expect(b",\"scenarios\":[")?;
        let mut scenarios = Vec::new();
        if p.peek() == Some(b']') {
            p.pos += 1;
        } else {
            loop {
                p.expect(b"{\"suite\":\"")?;
                let suite = p.label()?;
                p.expect(b"\",\"name\":\"")?;
                let name = p.label()?;
                p.expect(b"\",\"ops\":")?;
                let ops = p.integer()?;
                p.expect(b",\"elapsed_s\":")?;
                let elapsed_s = p.float()?;
                p.expect(b",\"hist\":")?;
                let hist = Histogram::from_wire_json(p.balanced_object()?)?;
                p.expect(b"}")?;
                if !(elapsed_s.is_finite() && elapsed_s >= 0.0) || ops != hist.count() {
                    return None;
                }
                scenarios.push(AgentScenario { suite, name, ops, elapsed_s, hist });
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b']') => {
                        p.pos += 1;
                        break;
                    }
                    _ => return None,
                }
            }
        }
        p.expect(b"}")?;
        if p.pos != p.bytes.len() {
            return None;
        }
        Some(AgentSummary { agent, seed, scenarios })
    }
}

fn label_ok(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_graphic() && b != b'"' && b != b'\\')
}

/// Strict cursor over the fixed agent-line grammar.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, literal: &[u8]) -> Option<()> {
        if self.bytes[self.pos..].starts_with(literal) {
            self.pos += literal.len();
            Some(())
        } else {
            None
        }
    }

    /// Digits-only `u64`; rejects overflow instead of rounding.
    fn integer(&mut self) -> Option<u64> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).ok()?.parse().ok()
    }

    /// A non-negative decimal float (digits, optional fraction).
    fn float(&mut self) -> Option<f64> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.')) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).ok()?.parse().ok()
    }

    /// An unescaped ASCII label, up to the closing quote (excluded).
    fn label(&mut self) -> Option<String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b != b'"' && b.is_ascii_graphic() && b != b'\\') {
            self.pos += 1;
        }
        if self.pos == start || self.peek() != Some(b'"') {
            return None;
        }
        Some(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// The balanced `{...}` slice starting here, advanced past. Safe
    /// because histogram wire JSON contains no strings, so every brace
    /// is structural.
    fn balanced_object(&mut self) -> Option<&'a str> {
        if self.peek() != Some(b'{') {
            return None;
        }
        let start = self.pos;
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return std::str::from_utf8(&self.bytes[start..self.pos]).ok();
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// One `(suite, name)` cell of the cross-agent merge.
#[derive(Debug, Clone)]
pub struct MergedScenario {
    /// Suite tag.
    pub suite: String,
    /// Scenario name.
    pub name: String,
    /// Agents that reported this scenario.
    pub agents: u64,
    /// Total operations across agents (= `hist.count()`).
    pub ops: u64,
    /// Wall time of the slowest agent, seconds — the agents run
    /// concurrently, so this is the harness-level elapsed time.
    pub elapsed_s: f64,
    /// `ops / elapsed_s`.
    pub ops_per_s: f64,
    /// The merged latency histogram, microseconds.
    pub hist: Histogram,
}

impl MergedScenario {
    /// The three tail figures the summary reports, as bucket upper
    /// bounds: `(p50, p95, p99)` in microseconds.
    #[must_use]
    pub fn tails_us(&self) -> Option<(u64, u64, u64)> {
        Some((
            self.hist.quantile_upper_bound(0.50)?,
            self.hist.quantile_upper_bound(0.95)?,
            self.hist.quantile_upper_bound(0.99)?,
        ))
    }
}

/// Merges agent summaries per `(suite, name)`, preserving first-seen
/// scenario order. Histograms merge exactly (`Histogram::merge_from`),
/// so each cell's `ops` is the plain sum of the agents' `ops`.
#[must_use]
pub fn merge_agents(agents: &[AgentSummary]) -> Vec<MergedScenario> {
    let mut merged: Vec<MergedScenario> = Vec::new();
    for agent in agents {
        for s in &agent.scenarios {
            let cell = match merged.iter_mut().find(|m| m.suite == s.suite && m.name == s.name) {
                Some(cell) => cell,
                None => {
                    merged.push(MergedScenario {
                        suite: s.suite.clone(),
                        name: s.name.clone(),
                        agents: 0,
                        ops: 0,
                        elapsed_s: 0.0,
                        ops_per_s: 0.0,
                        hist: Histogram::default(),
                    });
                    merged.last_mut().expect("just pushed")
                }
            };
            cell.agents += 1;
            cell.ops += s.ops;
            cell.elapsed_s = cell.elapsed_s.max(s.elapsed_s);
            cell.hist.merge_from(&s.hist);
        }
    }
    for cell in &mut merged {
        cell.ops_per_s = cell.ops as f64 / cell.elapsed_s.max(1e-9);
    }
    merged
}

/// Per-suite rollup: total throughput plus the tails of the suite's
/// scenarios merged into one histogram.
#[derive(Debug, Clone)]
pub struct SuiteSummary {
    /// Suite tag.
    pub suite: String,
    /// Total operations across the suite's scenarios.
    pub ops: u64,
    /// Sum of the scenarios' harness-level wall times (scenarios run
    /// sequentially inside each agent), seconds.
    pub elapsed_s: f64,
    /// `ops / elapsed_s`.
    pub ops_per_s: f64,
    /// All of the suite's latency samples, microseconds.
    pub hist: Histogram,
}

/// Rolls merged scenarios up into per-suite totals, preserving
/// first-seen suite order.
#[must_use]
pub fn suite_rollup(merged: &[MergedScenario]) -> Vec<SuiteSummary> {
    let mut suites: Vec<SuiteSummary> = Vec::new();
    for cell in merged {
        let suite = match suites.iter_mut().find(|s| s.suite == cell.suite) {
            Some(s) => s,
            None => {
                suites.push(SuiteSummary {
                    suite: cell.suite.clone(),
                    ops: 0,
                    elapsed_s: 0.0,
                    ops_per_s: 0.0,
                    hist: Histogram::default(),
                });
                suites.last_mut().expect("just pushed")
            }
        };
        suite.ops += cell.ops;
        suite.elapsed_s += cell.elapsed_s;
        suite.hist.merge_from(&cell.hist);
    }
    for s in &mut suites {
        s.ops_per_s = s.ops as f64 / s.elapsed_s.max(1e-9);
    }
    suites
}

/// Renders the pretty `summary.json` document the orchestrator writes.
#[must_use]
pub fn summary_json(agents: &[AgentSummary], merged: &[MergedScenario]) -> String {
    let suites = suite_rollup(merged);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("bench", "pphcr-bench");
    w.field_u64("agents", agents.len() as u64);
    w.begin_named_array("agent_seeds");
    for a in agents {
        w.item_u64(a.seed);
    }
    w.end_array();
    w.begin_named_array("suites");
    for s in &suites {
        let (p50, p95, p99) = tails_or_zero(&s.hist);
        w.begin_object();
        w.field_str("suite", &s.suite)
            .field_u64("ops", s.ops)
            .field_f64("elapsed_s", s.elapsed_s)
            .field_f64("ops_per_s", s.ops_per_s)
            .field_u64("p50_us", p50)
            .field_u64("p95_us", p95)
            .field_u64("p99_us", p99);
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("scenarios");
    for m in merged {
        let (p50, p95, p99) = tails_or_zero(&m.hist);
        w.begin_object();
        w.field_str("suite", &m.suite)
            .field_str("name", &m.name)
            .field_u64("agents", m.agents)
            .field_u64("ops", m.ops)
            .field_f64("elapsed_s", m.elapsed_s)
            .field_f64("ops_per_s", m.ops_per_s)
            .field_u64("p50_us", p50)
            .field_u64("p95_us", p95)
            .field_u64("p99_us", p99)
            .field_u64("hist_count", m.hist.count())
            .field_u64("hist_sum_us", m.hist.sum());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    doc
}

fn tails_or_zero(hist: &Histogram) -> (u64, u64, u64) {
    (
        hist.quantile_upper_bound(0.50).unwrap_or(0),
        hist.quantile_upper_bound(0.95).unwrap_or(0),
        hist.quantile_upper_bound(0.99).unwrap_or(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u64]) -> Histogram {
        let mut h = Histogram::default();
        for &v in values {
            h.record(v);
        }
        h
    }

    fn sample_summary(agent: u64) -> AgentSummary {
        AgentSummary {
            agent,
            seed: 42 ^ agent,
            scenarios: vec![
                AgentScenario {
                    suite: "A".into(),
                    name: "baseline_tick".into(),
                    ops: 3,
                    elapsed_s: 0.25,
                    hist: hist_of(&[10, 900, 1_024]),
                },
                AgentScenario {
                    suite: "B".into(),
                    name: "poisson_calm".into(),
                    ops: 2,
                    elapsed_s: 0.5,
                    hist: hist_of(&[0, 7]),
                },
            ],
        }
    }

    #[test]
    fn golden_agent_line_is_stable() {
        // The orchestrator greps release-agent stdout for exactly this
        // shape; a byte-level change here is a wire-format break.
        let line = sample_summary(0).to_line_json();
        assert_eq!(
            line,
            "{\"agent\":0,\"seed\":42,\"scenarios\":[\
             {\"suite\":\"A\",\"name\":\"baseline_tick\",\"ops\":3,\"elapsed_s\":0.250000,\
             \"hist\":{\"count\":3,\"sum\":1934,\"buckets\":[[4,1],[10,1],[11,1]]}},\
             {\"suite\":\"B\",\"name\":\"poisson_calm\",\"ops\":2,\"elapsed_s\":0.500000,\
             \"hist\":{\"count\":2,\"sum\":7,\"buckets\":[[0,1],[3,1]]}}]}"
        );
        assert!(!line.contains('\n'), "must stay a single line");
    }

    #[test]
    fn agent_line_round_trips() {
        let summary = sample_summary(3);
        let back = AgentSummary::from_line_json(&summary.to_line_json()).expect("round trip");
        assert_eq!(back, summary);
        // Empty scenario lists are legal (an agent that ran nothing).
        let empty = AgentSummary { agent: 1, seed: 9, scenarios: Vec::new() };
        assert_eq!(AgentSummary::from_line_json(&empty.to_line_json()), Some(empty));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let good = sample_summary(0).to_line_json();
        for bad in [
            "",
            "{}",
            "{\"agent\":0}",
            &good[..good.len() - 1],                     // truncated
            &format!("{good} x"),                        // trailing garbage
            &good.replace("\"ops\":3", "\"ops\":4"),     // ops disagree with hist
            &good.replace("\"seed\":42", "\"seed\":-1"), // negative integer
        ] {
            assert_eq!(AgentSummary::from_line_json(bad), None, "{bad:?}");
        }
        // Leading/trailing whitespace around the line itself is fine.
        assert!(AgentSummary::from_line_json(&format!("  {good}\n")).is_some());
    }

    #[test]
    fn merge_sums_ops_and_takes_slowest_elapsed() {
        let a = sample_summary(0);
        let b = sample_summary(1);
        let merged = merge_agents(&[a.clone(), b.clone()]);
        assert_eq!(merged.len(), 2, "two distinct (suite, name) cells");
        for (i, cell) in merged.iter().enumerate() {
            assert_eq!(cell.agents, 2);
            assert_eq!(cell.ops, a.scenarios[i].ops + b.scenarios[i].ops);
            assert_eq!(cell.hist.count(), cell.ops, "merge must stay lossless");
            assert!((cell.elapsed_s - a.scenarios[i].elapsed_s).abs() < 1e-12);
            let (p50, p95, p99) = cell.tails_us().expect("non-empty");
            assert!(p50 <= p95 && p95 <= p99);
        }
        let suites = suite_rollup(&merged);
        assert_eq!(suites.len(), 2);
        assert_eq!(suites[0].suite, "A");
        assert_eq!(suites[0].ops, 6);
        assert_eq!(suites[1].ops, 4);
    }

    #[test]
    fn summary_json_parses_and_reports_tails() {
        let agents = [sample_summary(0), sample_summary(1)];
        let merged = merge_agents(&agents);
        let doc = summary_json(&agents, &merged);
        let parsed = pphcr_core::json::parse(&doc).expect("summary.json must parse");
        assert_eq!(parsed.get("agents").and_then(|v| v.as_u64()), Some(2));
        let scenarios = parsed.get("scenarios").and_then(|v| v.as_arr()).expect("scenarios");
        assert_eq!(scenarios.len(), 2);
        for s in scenarios {
            let p50 = s.get("p50_us").and_then(|v| v.as_u64()).expect("p50");
            let p95 = s.get("p95_us").and_then(|v| v.as_u64()).expect("p95");
            let p99 = s.get("p99_us").and_then(|v| v.as_u64()).expect("p99");
            assert!(p50 <= p95 && p95 <= p99);
        }
        assert_eq!(parsed.get("suites").and_then(|v| v.as_arr()).map(<[_]>::len), Some(2));
    }
}
