//! Benchmark harness for PPHCR.
//!
//! One Criterion bench target per experiment in `DESIGN.md` (E1–E10).
//! Each bench prints its experiment's result table once (the rows that
//! `EXPERIMENTS.md` records) and then measures the hot path under
//! Criterion. The `experiments` binary prints every table without
//! timing noise, and the process-based tail-latency harness (E15)
//! lives in [`harness`]:
//!
//! ```text
//! cargo run -p pphcr-bench --release --bin experiments
//! cargo run -p pphcr-bench --release --bin pphcr-bench
//! cargo bench -p pphcr-bench
//! ```

pub mod harness;

use std::sync::Once;

/// Runs `f` exactly once per process — used so a bench target prints
/// its experiment table a single time regardless of Criterion's
/// iteration strategy.
pub fn print_once(f: impl FnOnce()) {
    static ONCE: Once = Once::new();
    ONCE.call_once(f);
}
