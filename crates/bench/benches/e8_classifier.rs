//! E8 — §1.2: ASR + Bayesian classification over 30 categories.
//!
//! Prints the accuracy grid (WER × training size) and benchmarks
//! training and prediction throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pphcr_catalog::{CategoryId, CATEGORY_COUNT};
use pphcr_nlp::{NaiveBayes, Vocabulary};
use pphcr_sim::experiments::e8_classifier;
use pphcr_sim::CorpusGenerator;
use std::hint::black_box;

fn bench_e8(c: &mut Criterion) {
    pphcr_bench::print_once(|| {
        println!("\n=== E8: classifier accuracy vs ASR WER and training size ===");
        for row in e8_classifier(&[0.0, 0.1, 0.2, 0.35, 0.5], &[2, 8, 32], 4, 5) {
            println!("{row}");
        }
        println!();
    });

    let gen = CorpusGenerator::new(5);
    let train = gen.training_set(8, 150);
    c.bench_function("e8_train_240_docs", |b| {
        b.iter(|| {
            let mut vocab = Vocabulary::new();
            let mut nb = NaiveBayes::new(u32::from(CATEGORY_COUNT), 1.0);
            for doc in &train {
                let ids = vocab.intern_all(&doc.tokens);
                nb.train(u32::from(doc.category.0), &ids);
            }
            black_box(nb.vocab_size())
        });
    });

    // Prediction throughput.
    let mut vocab = Vocabulary::new();
    let mut nb = NaiveBayes::new(u32::from(CATEGORY_COUNT), 1.0);
    for doc in &train {
        let ids = vocab.intern_all(&doc.tokens);
        nb.train(u32::from(doc.category.0), &ids);
    }
    let tests: Vec<Vec<u32>> = (0..50)
        .map(|k| {
            let doc = gen.document(CategoryId::new((k % 30) as u16), 150, 7_000_000 + k);
            doc.tokens.iter().filter_map(|t| vocab.get(t)).collect()
        })
        .collect();
    let mut group = c.benchmark_group("e8_predict");
    group.throughput(Throughput::Elements(tests.len() as u64));
    group.bench_function("predict_50_docs", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for ids in &tests {
                if let Some(p) = nb.predict(ids) {
                    hits += p.category;
                }
            }
            black_box(hits)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e8
}
criterion_main!(benches);
