//! E7 — the paper's network-resource-optimization claim.
//!
//! Prints total traffic per delivery plan across audience sizes and
//! the hybrid-vs-all-IP crossover per personalized fraction, then
//! benchmarks the cost model itself.

use criterion::{criterion_group, criterion_main, Criterion};
use pphcr_core::{DeliveryPlanKind, NetworkCostModel};
use pphcr_geo::TimeSpan;
use pphcr_sim::experiments::e7_netcost;
use std::hint::black_box;

fn bench_e7(c: &mut Criterion) {
    pphcr_bench::print_once(|| {
        println!("\n=== E7: network cost, 1 listening hour, p=0.2 ===");
        let (rows, crossovers) =
            e7_netcost(&[100, 1_000, 10_000, 100_000], 0.2, TimeSpan::hours(1));
        for row in rows {
            println!("{row}");
        }
        println!("crossover audiences (hybrid beats all-IP):");
        for (p, n) in crossovers {
            match n {
                Some(n) => println!("  p={p:.2} -> {n} listeners"),
                None => println!("  p={p:.2} -> never"),
            }
        }
        println!();
    });

    let model = NetworkCostModel::default();
    c.bench_function("e7_traffic_single", |b| {
        b.iter(|| {
            black_box(model.traffic(
                DeliveryPlanKind::Hybrid,
                black_box(25_000),
                TimeSpan::hours(1),
                0.25,
            ))
        });
    });
    c.bench_function("e7_crossover_search", |b| {
        b.iter(|| black_box(model.hybrid_crossover(TimeSpan::hours(1), 0.3, 1_000_000)));
    });
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
