//! E10 — ablation of the distraction constraint (§1.2: "driver's
//! projected distraction levels at intersections and roundabouts").
//!
//! Prints the constrained-vs-unconstrained comparison (zone violations,
//! relevance cost) and benchmarks the zone-aware packer.

use criterion::{criterion_group, criterion_main, Criterion};
use pphcr_recommender::{Recommender, SchedulerConfig};
use pphcr_sim::experiments::{e10_distraction, morning_drive_context, trip_world};
use pphcr_userdata::UserId;
use std::hint::black_box;

fn bench_e10(c: &mut Criterion) {
    let world = trip_world(30, 300, 12);
    pphcr_bench::print_once(|| {
        println!("\n=== E10: distraction-aware scheduling ablation ===");
        for row in e10_distraction(&world) {
            println!("{row}");
        }
        println!();
    });

    let commuter = &world.population.commuters[0];
    let ctx = morning_drive_context(&world, commuter).expect("driving");
    let drive = ctx.drive.as_ref().unwrap();
    let aware = Recommender::default();
    let ranked = aware.rank(&world.repo, &world.feedback, UserId(commuter.index), &ctx);
    c.bench_function("e10_pack_with_zones", |b| {
        b.iter(|| black_box(aware.scheduler.pack(black_box(&ranked), drive, world.now)));
    });
    let unconstrained = SchedulerConfig { avoid_distraction: false, ..Default::default() };
    c.bench_function("e10_pack_without_zones", |b| {
        b.iter(|| black_box(unconstrained.pack(black_box(&ranked), drive, world.now)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e10
}
criterion_main!(benches);
