//! E6 — Fig. 6: editorial recommendation injection.
//!
//! Prints the injection delivery report (hops, ticks, precedence) and
//! benchmarks the submit→deliver path.

use criterion::{criterion_group, criterion_main, Criterion};
use pphcr_catalog::{CategoryId, ClipKind, ServiceIndex};
use pphcr_core::{Engine, EngineConfig};
use pphcr_geo::{TimePoint, TimeSpan};
use pphcr_sim::experiments::e6_injection;
use pphcr_userdata::{AgeBand, UserId, UserProfile};
use std::hint::black_box;

fn bench_e6(c: &mut Criterion) {
    pphcr_bench::print_once(|| {
        println!("\n=== E6 (Fig. 6): editorial injection ===");
        println!("{}", e6_injection(1));
        println!();
    });

    // Benchmark the full submit→tick→deliver loop.
    c.bench_function("e6_inject_and_deliver", |b| {
        let t0 = TimePoint::at(0, 9, 0, 0);
        let mut engine = Engine::new(EngineConfig::default());
        engine.register_user(
            UserProfile {
                id: UserId(1),
                name: "target".into(),
                age_band: AgeBand::Adult,
                favourite_service: ServiceIndex(0),
            },
            t0,
        );
        let (clip, _) = engine.ingest_clip(
            "pick",
            ClipKind::Podcast,
            TimeSpan::minutes(3),
            t0,
            None,
            &[],
            Some(CategoryId::new(2)),
        );
        let mut t = t0;
        b.iter(|| {
            t = t.advance(TimeSpan::seconds(30));
            engine.inject(UserId(1), clip, t, "bench").unwrap();
            black_box(engine.tick(UserId(1), t))
        });
    });

    c.bench_function("e6_report", |b| {
        b.iter(|| black_box(e6_injection(1)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_e6
}
criterion_main!(benches);
