//! E9 — ablation of the compound score's content/context weight `w_c`
//! (§1.2: "a compound relevance score is calculated through weighted
//! combination").
//!
//! Prints the sweep (taste, geo-hit rate, skip rate per `w_c`) and
//! benchmarks the sweep harness.

use criterion::{criterion_group, criterion_main, Criterion};
use pphcr_sim::experiments::{e9_weight_sweep, trip_world};
use std::hint::black_box;

fn bench_e9(c: &mut Criterion) {
    let world = trip_world(30, 300, 99);
    pphcr_bench::print_once(|| {
        println!("\n=== E9: compound-weight sweep (30 commuters × 300 clips) ===");
        for row in e9_weight_sweep(&world, &[0.0, 0.25, 0.5, 0.55, 0.75, 1.0]) {
            println!("{row}");
        }
        println!();
    });
    c.bench_function("e9_single_weight_point", |b| {
        b.iter(|| black_box(e9_weight_sweep(&world, &[0.55])));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e9
}
criterion_main!(benches);
