//! E3 — Fig. 3: the full pipeline at paper scale.
//!
//! Paper numbers: 10 live services, "more than 100 podcasts created
//! every day", 30 categories. Prints per-stage throughput and
//! benchmarks the classification-heavy ingest step.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pphcr_catalog::{CategoryId, ClipKind};
use pphcr_core::{Engine, EngineConfig};
use pphcr_geo::{TimePoint, TimeSpan};
use pphcr_nlp::{AsrConfig, SimulatedAsr};
use pphcr_sim::experiments::e3_pipeline;
use pphcr_sim::{CorpusGenerator, SyntheticCity};
use std::hint::black_box;

fn bench_e3(c: &mut Criterion) {
    pphcr_bench::print_once(|| {
        println!("\n=== E3 (Fig. 3): pipeline throughput, 110 podcasts/day × 100 users ===");
        for row in e3_pipeline(110, 100, 7) {
            println!("{row}");
        }
        println!();
    });

    // Benchmark: ingest+classify one day's batch.
    let city = SyntheticCity::generate(12, 400.0, 7);
    let gen = CorpusGenerator::new(7);
    let batch = gen.daily_batch(&city, 0, 110, 0.15);
    let pool: Vec<String> = (0..100).map(|i| format!("common{i}")).collect();
    let mut group = c.benchmark_group("e3_pipeline");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("ingest_day_batch", |b| {
        b.iter(|| {
            let mut engine = Engine::new(EngineConfig::default());
            for doc in gen.training_set(3, 120) {
                engine.train_classifier(doc.category, &doc.tokens);
            }
            let mut asr = SimulatedAsr::new(AsrConfig { wer: 0.15, seed: 7, ..Default::default() });
            for clip in &batch {
                let transcript = asr.transcribe(&clip.doc.tokens, &pool);
                engine.ingest_clip(
                    clip.title.clone(),
                    clip.kind,
                    clip.duration,
                    clip.published,
                    clip.geo,
                    &transcript,
                    None,
                );
            }
            black_box(engine.repo.len())
        });
    });
    group.finish();

    // Benchmark: labelled (no-ASR) editorial ingest.
    c.bench_function("e3_editorial_ingest_only", |b| {
        b.iter(|| {
            let mut engine = Engine::new(EngineConfig::default());
            for (i, clip) in batch.iter().enumerate() {
                engine.ingest_clip(
                    clip.title.clone(),
                    ClipKind::Podcast,
                    clip.duration,
                    TimePoint::at(0, 6, 0, 0).advance(TimeSpan::seconds(i as u64)),
                    None,
                    &[],
                    Some(CategoryId::new((i % 30) as u16)),
                );
            }
            black_box(engine.repo.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e3
}
criterion_main!(benches);
