//! E5 — Fig. 5: trajectory compaction (DBSCAN staying points + RDP).
//!
//! Prints the compression/error table and staying-point recovery, then
//! benchmarks DBSCAN and RDP scaling with trace length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pphcr_geo::ProjectedPoint;
use pphcr_sim::experiments::e5_trajectory;
use pphcr_sim::population::GpsNoise;
use pphcr_sim::{Population, SyntheticCity};
use pphcr_trajectory::{dbscan, rdp_indices, DbscanParams};
use std::hint::black_box;

fn bench_e5(c: &mut Criterion) {
    pphcr_bench::print_once(|| {
        println!("\n=== E5 (Fig. 5): trajectory compaction, 7 days of commuting ===");
        let (rows, stays) = e5_trajectory(7, &[5.0, 15.0, 50.0, 150.0], 3);
        for row in rows {
            println!("{row}");
        }
        println!("{stays}");
        println!();
    });

    // Build realistic multi-day traces once.
    let city = SyntheticCity::generate(12, 400.0, 3);
    let pop = Population::generate(&city, 1, 5);
    let commuter = &pop.commuters[0];
    let mut all = Vec::new();
    for day in 0..14 {
        all.extend(pop.day_trace(&city, commuter, day, GpsNoise::default()));
    }
    let points: Vec<ProjectedPoint> =
        all.iter().map(|f| city.projection.project(f.point)).collect();

    let mut group = c.benchmark_group("e5_scaling");
    for &n in &[500usize, 2_000, points.len().min(8_000)] {
        let slice = &points[..n.min(points.len())];
        group.throughput(Throughput::Elements(slice.len() as u64));
        group.bench_with_input(BenchmarkId::new("rdp", n), &slice, |b, pts| {
            b.iter(|| black_box(rdp_indices(pts, 15.0)));
        });
        group.bench_with_input(BenchmarkId::new("dbscan", n), &slice, |b, pts| {
            b.iter(|| black_box(dbscan(pts, DbscanParams::default())));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e5
}
criterion_main!(benches);
