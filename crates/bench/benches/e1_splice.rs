//! E1 — Fig. 1: seamless replacement of live audio by a clip.
//!
//! Prints the seam-quality table (faded vs hard-cut discontinuity per
//! clip length) and benchmarks the sample-accurate renderer at the
//! broadcast rate (48 kHz).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pphcr_sim::experiments::{e1_replacement_plan, e1_seam_quality};
use std::hint::black_box;

fn bench_e1(c: &mut Criterion) {
    pphcr_bench::print_once(|| {
        println!("\n=== E1 (Fig. 1): seam quality, 48 kHz ===");
        for row in e1_seam_quality(48_000, &[10, 60, 300, 900]) {
            println!("{row}");
        }
        println!();
    });
    let mut group = c.benchmark_group("e1_splice_render");
    for &clip_s in &[10u64, 60, 300] {
        let plan = e1_replacement_plan(48_000, clip_s, 960);
        let samples = plan.end();
        group.throughput(Throughput::Elements(samples));
        let mut out = vec![0.0f32; samples as usize];
        group.bench_with_input(BenchmarkId::new("render", clip_s), &plan, |b, plan| {
            b.iter(|| {
                let stats = plan.render_into(0, black_box(&mut out));
                black_box(stats)
            });
        });
    }
    group.finish();

    // Validation cost: how fast can plans be checked before air.
    c.bench_function("e1_plan_validation", |b| {
        b.iter(|| black_box(e1_replacement_plan(48_000, 300, 960)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e1
}
criterion_main!(benches);
