//! E4 — Fig. 4: schedule-synchronized buffering and skip propensity.
//!
//! Prints (a) the reconstructed Lilly timeline and (b) the simulated
//! skip/surf comparison between linear radio and PPHCR, then
//! benchmarks replacement planning.

use criterion::{criterion_group, criterion_main, Criterion};
use pphcr_audio::{ClipId, ClipStore, SampleClock};
use pphcr_catalog::{CategoryId, Programme, ProgrammeId, Schedule, ServiceIndex};
use pphcr_core::ReplacementPlanner;
use pphcr_geo::time::TimeInterval;
use pphcr_geo::{TimePoint, TimeSpan};
use pphcr_sim::experiments::e4_skip_propensity;
use std::hint::black_box;

fn fig4_epg() -> Schedule {
    let mut epg = Schedule::new();
    for (id, start, end) in [
        (1, TimePoint::at(0, 10, 42, 30), TimePoint::at(0, 10, 55, 0)),
        (2, TimePoint::at(0, 10, 55, 0), TimePoint::at(0, 11, 10, 0)),
        (3, TimePoint::at(0, 11, 10, 0), TimePoint::at(0, 11, 20, 0)),
    ] {
        epg.add(Programme {
            id: ProgrammeId(id),
            service: ServiceIndex(0),
            title: format!("Program {id}"),
            category: CategoryId::new(19),
            interval: TimeInterval::new(start, end),
        })
        .unwrap();
    }
    epg
}

fn bench_e4(c: &mut Criterion) {
    pphcr_bench::print_once(|| {
        println!("\n=== E4 (Fig. 4): Lilly timeline ===");
        let mut store = ClipStore::new();
        store.insert_simple(ClipId(100), TimeSpan::minutes(15));
        let planner = ReplacementPlanner { clock: SampleClock::new(100), fade_samples: 50 };
        let (_, timeline) = planner
            .plan(
                ServiceIndex(0),
                &store,
                &fig4_epg(),
                TimePoint::at(0, 10, 42, 30),
                TimePoint::at(0, 11, 0, 0),
                &[ClipId(100)],
                TimePoint::at(0, 11, 30, 0),
            )
            .unwrap();
        for span in &timeline.spans {
            println!("  {} {:?} programme={:?}", span.interval, span.entry, span.programme);
        }
        println!("  displacement={} buffer={}", timeline.displacement, timeline.required_buffer);
        println!("\n=== E4: skip propensity, 10 commuters × 15 mornings × 8 items ===");
        for row in e4_skip_propensity(10, 15, 8, 7) {
            println!("{row}");
        }
        println!();
    });

    let store = {
        let mut s = ClipStore::new();
        for i in 0..4u64 {
            s.insert_simple(ClipId(i), TimeSpan::minutes(3 + i));
        }
        s
    };
    let epg = fig4_epg();
    let planner = ReplacementPlanner::default();
    c.bench_function("e4_replacement_planning", |b| {
        b.iter(|| {
            black_box(
                planner
                    .plan(
                        ServiceIndex(0),
                        &store,
                        &epg,
                        TimePoint::at(0, 10, 42, 30),
                        TimePoint::at(0, 11, 0, 0),
                        &[ClipId(0), ClipId(1), ClipId(2)],
                        TimePoint::at(0, 11, 30, 0),
                    )
                    .unwrap(),
            )
        });
    });
    c.bench_function("e4_skip_sim_small", |b| {
        b.iter(|| black_box(e4_skip_propensity(4, 6, 4, 7)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e4
}
criterion_main!(benches);
