//! E11 — the ensemble effect of the recommendation list (paper §3
//! future work): MMR diversity re-ranking, relevance vs variety.

use criterion::{criterion_group, criterion_main, Criterion};
use pphcr_recommender::{diversify, Recommender};
use pphcr_sim::experiments::{e11_ensemble, morning_drive_context, trip_world};
use pphcr_userdata::UserId;
use std::hint::black_box;

fn bench_e11(c: &mut Criterion) {
    let world = trip_world(30, 300, 5);
    pphcr_bench::print_once(|| {
        println!("\n=== E11: ensemble diversity sweep (MMR λ) ===");
        for row in e11_ensemble(&world, &[1.0, 0.8, 0.6, 0.4, 0.2, 0.0], 6) {
            println!("{row}");
        }
        println!();
    });
    let recommender = Recommender::default();
    let commuter = &world.population.commuters[0];
    let ctx = morning_drive_context(&world, commuter).expect("driving");
    let ranked = recommender.rank(&world.repo, &world.feedback, UserId(commuter.index), &ctx);
    c.bench_function("e11_mmr_rerank", |b| {
        b.iter(|| black_box(diversify(black_box(&ranked), &world.repo, 0.6, 6)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e11
}
criterion_main!(benches);
