//! E2 — Fig. 2: proactive trip fill.
//!
//! Prints the strategy comparison (compound vs content-only vs
//! context-only vs popularity vs random) and benchmarks the end-to-end
//! rank+pack step for one driving listener.

use criterion::{criterion_group, criterion_main, Criterion};
use pphcr_recommender::Recommender;
use pphcr_sim::experiments::{e2_trip_fill, morning_drive_context, trip_world};
use pphcr_userdata::UserId;
use std::hint::black_box;

fn bench_e2(c: &mut Criterion) {
    let world = trip_world(30, 300, 42);
    pphcr_bench::print_once(|| {
        println!("\n=== E2 (Fig. 2): proactive trip fill, 30 commuters × 300 clips ===");
        for row in e2_trip_fill(&world) {
            println!("{row}");
        }
        println!();
    });
    let recommender = Recommender::default();
    let commuter = &world.population.commuters[0];
    let ctx = morning_drive_context(&world, commuter).expect("driving context");
    c.bench_function("e2_rank_and_pack_one_trip", |b| {
        b.iter(|| {
            let ranked = recommender.rank(
                &world.repo,
                &world.feedback,
                UserId(commuter.index),
                black_box(&ctx),
            );
            let drive = ctx.drive.as_ref().unwrap();
            black_box(recommender.scheduler.pack(&ranked, drive, world.now))
        });
    });
    c.bench_function("e2_full_population_sweep", |b| {
        b.iter(|| black_box(e2_trip_fill(&world)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e2
}
criterion_main!(benches);
