//! E12 — chaos resilience: delivery under a hostile network.
//!
//! Prints the per-profile resilience table (retries, duplicate
//! filtering, dead letters, final health mix) and benchmarks the
//! chaos-hardened delivery loop against the calm baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use pphcr_sim::experiments::e12_resilience;
use std::hint::black_box;

fn bench_e12(c: &mut Criterion) {
    pphcr_bench::print_once(|| {
        println!("\n=== E12: chaos resilience ===");
        for row in e12_resilience(5, 4, 42) {
            println!("{row}");
        }
        println!();
    });

    c.bench_function("e12_resilience_small", |b| {
        b.iter(|| black_box(e12_resilience(2, 2, 42)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e12
}
criterion_main!(benches);
