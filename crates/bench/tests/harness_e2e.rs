//! End-to-end test of the process-based bench harness: spawns the real
//! `bench_agent` and `pphcr-bench` binaries (debug builds of the same
//! code CI runs in release) at a tiny scale and checks the acceptance
//! invariants — a parseable single-line agent summary, same-seed count
//! reproducibility, and a `summary.json` whose merged totals are the
//! sums of the agent totals with finite, ordered tails.

use pphcr_bench::harness::AgentSummary;
use std::collections::HashMap;
use std::process::Command;

/// Tiny-scale env for every spawned process: the point here is the
/// plumbing, not the numbers.
fn tiny_env(cmd: &mut Command) -> &mut Command {
    cmd.env("AGENT_USERS", "6")
        .env("AGENT_CLIPS", "300")
        .env("AGENT_TICKS", "4")
        .env("AGENT_PASSES", "1")
        .env("AGENT_ARRIVALS", "48")
        .env("AGENT_WORKERS", "2")
}

fn run_agent(seed: &str) -> AgentSummary {
    let output = tiny_env(&mut Command::new(env!("CARGO_BIN_EXE_bench_agent")))
        .env("AGENT_ID", "7")
        .env("AGENT_SEED", seed)
        .output()
        .expect("spawn bench_agent");
    assert!(output.status.success(), "agent failed: {output:?}");
    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    assert_eq!(stdout.trim().lines().count(), 1, "stdout must be a single line: {stdout:?}");
    AgentSummary::from_line_json(&stdout).expect("agent line must parse")
}

#[test]
fn agent_emits_a_parseable_line_with_reproducible_counts() {
    let first = run_agent("11");
    assert_eq!(first.agent, 7);
    assert_eq!(first.seed, 11);
    assert_eq!(first.scenarios.len(), 5, "three Suite A + two Suite B scenarios");
    for s in &first.scenarios {
        assert!(s.ops > 0, "{}/{} ran no ops", s.suite, s.name);
        assert_eq!(s.ops, s.hist.count());
    }
    // Same seed, same spec: identical operation counts (the latencies
    // inside the buckets are the only thing allowed to move).
    let again = run_agent("11");
    for (a, b) in first.scenarios.iter().zip(&again.scenarios) {
        assert_eq!(
            (a.suite.as_str(), a.name.as_str(), a.ops),
            (b.suite.as_str(), b.name.as_str(), b.ops)
        );
    }
}

#[test]
fn orchestrator_merges_two_agents_into_summary_json() {
    let out = format!("{}/summary_e2e_{}.json", env!("CARGO_TARGET_TMPDIR"), std::process::id());
    let status = tiny_env(&mut Command::new(env!("CARGO_BIN_EXE_pphcr-bench")))
        .env("PPHCR_BENCH_AGENTS", "2")
        .env("PPHCR_BENCH_SEED", "42")
        .env("PPHCR_BENCH_OUT", &out)
        .env("PPHCR_BENCH_AGENT_BIN", env!("CARGO_BIN_EXE_bench_agent"))
        .status()
        .expect("spawn pphcr-bench");
    assert!(status.success(), "pphcr-bench must exit 0");

    // Independent ground truth: run the two agents the orchestrator
    // ran (same seeds) and sum their per-scenario ops.
    let mut expected: HashMap<(String, String), u64> = HashMap::new();
    for i in 0..2u64 {
        for s in run_agent(&(42 ^ i).to_string()).scenarios {
            *expected.entry((s.suite, s.name)).or_insert(0) += s.ops;
        }
    }

    let doc = std::fs::read_to_string(&out).expect("summary.json written");
    std::fs::remove_file(&out).ok();
    let parsed = pphcr_core::json::parse(&doc).expect("summary.json parses");
    assert_eq!(parsed.get("agents").and_then(|v| v.as_u64()), Some(2));
    let scenarios = parsed.get("scenarios").and_then(|v| v.as_arr()).expect("scenarios array");
    assert_eq!(scenarios.len(), 5);
    for s in scenarios {
        let suite = s.get("suite").and_then(|v| v.as_str()).expect("suite").to_string();
        let name = s.get("name").and_then(|v| v.as_str()).expect("name").to_string();
        let ops = s.get("ops").and_then(|v| v.as_u64()).expect("ops");
        assert_eq!(s.get("agents").and_then(|v| v.as_u64()), Some(2), "{suite}/{name}");
        assert_eq!(
            Some(&ops),
            expected.get(&(suite.clone(), name.clone())).as_deref(),
            "merged ops for {suite}/{name} must equal the sum of the agents'"
        );
        assert_eq!(s.get("hist_count").and_then(|v| v.as_u64()), Some(ops), "{suite}/{name}");
        let p50 = s.get("p50_us").and_then(|v| v.as_u64()).expect("p50_us");
        let p95 = s.get("p95_us").and_then(|v| v.as_u64()).expect("p95_us");
        let p99 = s.get("p99_us").and_then(|v| v.as_u64()).expect("p99_us");
        assert!(p50 <= p95 && p95 <= p99, "{suite}/{name}: {p50} {p95} {p99}");
        let throughput = s.get("ops_per_s").and_then(|v| v.as_f64()).expect("ops_per_s");
        assert!(throughput.is_finite() && throughput > 0.0, "{suite}/{name}");
    }
    let suites = parsed.get("suites").and_then(|v| v.as_arr()).expect("suites array");
    assert_eq!(suites.len(), 2, "Suite A and Suite B rollups");
}
