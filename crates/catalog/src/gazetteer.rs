//! Gazetteer-based geographic tagging of archive content.
//!
//! The paper's future work (§3): *"we are planning to estimate the
//! geographic relevance of audio items available in the archives. This
//! operation involves the analysis of informative and entertainment
//! content as well as advertisements."* This module implements that
//! estimation: a gazetteer maps place tokens (venue names, quarters,
//! landmarks) to coordinates; a transcript is scanned for mentions and
//! the dominant place — if mentioned often enough to be *about* the
//! place rather than merely name-dropping it — becomes the clip's
//! [`GeoTag`].

use crate::clipmeta::GeoTag;
use pphcr_geo::GeoPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One gazetteer entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Place {
    /// Canonical name (matches a transcript token, lowercase).
    pub name: String,
    /// Location.
    pub point: GeoPoint,
    /// Relevance radius for content about this place, meters.
    pub radius_m: f64,
}

/// A place-name → location dictionary with transcript tagging.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Gazetteer {
    places: HashMap<String, Place>,
    /// Minimum mentions for a tag to be assigned (default 2: one
    /// mention is name-dropping, two is topicality).
    pub min_mentions: usize,
}

impl Gazetteer {
    /// Creates an empty gazetteer with the default mention threshold.
    #[must_use]
    pub fn new() -> Self {
        Gazetteer { places: HashMap::new(), min_mentions: 2 }
    }

    /// Adds (or replaces) a place.
    pub fn add(&mut self, place: Place) {
        self.places.insert(place.name.clone(), place);
    }

    /// Convenience: add by fields.
    pub fn add_place(&mut self, name: impl Into<String>, point: GeoPoint, radius_m: f64) {
        let name = name.into();
        self.places.insert(name.clone(), Place { name, point, radius_m });
    }

    /// Number of known places.
    #[must_use]
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// True when no place is known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// Looks a place up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Place> {
        self.places.get(name)
    }

    /// All places sorted by name, for deterministic persistence.
    #[must_use]
    // lint: allow(reach-hash-iter) — result fully sorted by place name before return
    pub fn places_sorted(&self) -> Vec<&Place> {
        let mut out: Vec<&Place> = self.places.values().collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Counts place mentions in a transcript, most-mentioned first
    /// (ties broken by name for determinism).
    #[must_use]
    // lint: allow(reach-hash-iter) — result fully sorted by (count desc, place name) before return
    pub fn mentions(&self, tokens: &[String]) -> Vec<(&Place, usize)> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for t in tokens {
            if self.places.contains_key(t.as_str()) {
                *counts.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(&Place, usize)> =
            counts.into_iter().map(|(name, n)| (&self.places[name], n)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.name.cmp(&b.0.name)));
        out
    }

    /// Estimates the clip's geographic tag from its transcript:
    /// the most-mentioned place, provided it clears `min_mentions` and
    /// strictly dominates the runner-up (a tie means the clip is about
    /// a journey, not a place — leave it untagged).
    #[must_use]
    pub fn tag(&self, tokens: &[String]) -> Option<GeoTag> {
        let mentions = self.mentions(tokens);
        let (best, n) = mentions.first()?;
        if *n < self.min_mentions {
            return None;
        }
        if let Some((_, runner_up)) = mentions.get(1) {
            if runner_up == n {
                return None;
            }
        }
        Some(GeoTag { point: best.point, radius_m: best.radius_m })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torino_gazetteer() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.add_place("stadio", GeoPoint::new(45.1096, 7.6413), 1_500.0);
        g.add_place("lingotto", GeoPoint::new(45.0320, 7.6640), 1_000.0);
        g.add_place("portapalazzo", GeoPoint::new(45.0767, 7.6822), 800.0);
        g
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn dominant_place_is_tagged() {
        let g = torino_gazetteer();
        let tag = g
            .tag(&toks("derby allo stadio questa sera lo stadio apre alle venti"))
            .expect("two stadium mentions");
        assert!((tag.point.lat - 45.1096).abs() < 1e-9);
        assert_eq!(tag.radius_m, 1_500.0);
    }

    #[test]
    fn single_mention_is_name_dropping() {
        let g = torino_gazetteer();
        assert!(g.tag(&toks("una notizia dallo stadio e altro")).is_none());
    }

    #[test]
    fn tie_between_places_stays_untagged() {
        let g = torino_gazetteer();
        let text = "stadio stadio lingotto lingotto percorso";
        assert!(g.tag(&toks(text)).is_none(), "a journey piece is about no single place");
    }

    #[test]
    fn dominance_breaks_near_ties() {
        let g = torino_gazetteer();
        let text = "stadio stadio stadio lingotto lingotto";
        let tag = g.tag(&toks(text)).expect("3 > 2 mentions");
        assert!((tag.point.lat - 45.1096).abs() < 1e-9);
    }

    #[test]
    fn mentions_sorted_and_counted() {
        let g = torino_gazetteer();
        let m = g.mentions(&toks("lingotto stadio lingotto portapalazzo lingotto stadio"));
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].0.name, "lingotto");
        assert_eq!(m[0].1, 3);
        assert_eq!(m[1].0.name, "stadio");
        assert_eq!(m[1].1, 2);
    }

    #[test]
    fn unknown_tokens_ignored() {
        let g = torino_gazetteer();
        assert!(g.mentions(&toks("vino prosecco cucina")).is_empty());
        assert!(g.tag(&toks("vino prosecco")).is_none());
    }

    #[test]
    fn threshold_is_configurable() {
        let mut g = torino_gazetteer();
        g.min_mentions = 1;
        assert!(g.tag(&toks("concerto al lingotto stasera")).is_some());
    }

    #[test]
    fn empty_inputs() {
        let g = Gazetteer::new();
        assert!(g.is_empty());
        assert!(g.tag(&[]).is_none());
        let g = torino_gazetteer();
        assert_eq!(g.len(), 3);
        assert!(g.tag(&[]).is_none());
    }
}
