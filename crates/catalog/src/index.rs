//! The incremental query index over the content repository.
//!
//! The platform ingests "more than 100 podcasts created every day"
//! (§1.2) and answers candidate queries for *every listener on every
//! engine tick*. A full scan per query is O(users × clips) per
//! wall-clock step; this index turns the two retrieval shapes the
//! recommender needs into sub-linear lookups, following the
//! retrieve-then-score split of contextual re-ranking pipelines:
//!
//! * **per-category posting lists ordered by publication time** — the
//!   freshness cutoff becomes a binary search (`partition_point`), so
//!   "recent clips in liked categories" costs O(log n + hits) per
//!   category instead of O(clips);
//! * **a uniform spatial grid** (reusing [`pphcr_geo::grid`]) over
//!   projected geo-tag positions — route-corridor queries visit only
//!   the occupied cells under the route's padded bounding box.
//!
//! The index is maintained incrementally on ingest and exposes an
//! **epoch** counter that bumps on every mutation; caches layered above
//! (the engine's per-user candidate cache) invalidate on epoch change.

use crate::category::CategoryId;
use crate::clipmeta::ClipMetadata;
use pphcr_audio::ClipId;
use pphcr_geo::grid::GridIndex;
use pphcr_geo::{LocalProjection, ProjectedPoint, TimePoint};
use std::collections::HashMap;

/// One posting-list entry: publication instant and clip id, ordered by
/// `(published, id)` so equal timestamps still have a total order.
pub type Posting = (TimePoint, ClipId);

/// The incremental repository index.
#[derive(Debug, Clone)]
pub struct RepositoryIndex {
    /// Per-category posting lists, each sorted ascending by
    /// `(published, id)`.
    by_category: HashMap<CategoryId, Vec<Posting>>,
    /// Geo-tagged clips indexed by projected tag position.
    geo: GridIndex<ClipId>,
    /// Largest tag radius ingested; route queries pad their candidate
    /// window by it so wide-coverage tags are never missed.
    max_tag_radius_m: f64,
    /// Bumped on every mutation (insert, remove, geo rebuild).
    epoch: u64,
}

impl RepositoryIndex {
    /// Creates an empty index with the given geo cell size (meters).
    #[must_use]
    pub fn new(geo_cell_m: f64) -> Self {
        RepositoryIndex {
            by_category: HashMap::new(),
            geo: GridIndex::new(geo_cell_m),
            max_tag_radius_m: 0.0,
            epoch: 0,
        }
    }

    /// The current index epoch. Any mutation bumps it, so a consumer
    /// holding results derived from the index can detect staleness by
    /// comparing epochs.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Indexes one clip's metadata. The caller guarantees the clip id
    /// is not currently indexed (remove first on replacement).
    pub fn insert(&mut self, meta: &ClipMetadata, projection: &LocalProjection) {
        let list = self.by_category.entry(meta.category).or_default();
        let posting = (meta.published, meta.id);
        let at = list.partition_point(|&p| p < posting);
        list.insert(at, posting);
        if let Some(tag) = meta.geo {
            self.geo.insert(projection.project(tag.point), meta.id);
            self.max_tag_radius_m = self.max_tag_radius_m.max(tag.radius_m);
        }
        self.epoch += 1;
    }

    /// Drops one clip's posting-list entry (the category side). Grid
    /// entries are append-only; the repository rebuilds the geo side
    /// via [`Self::rebuild_geo`] when a tagged clip is replaced.
    pub fn remove(&mut self, meta: &ClipMetadata) {
        if let Some(list) = self.by_category.get_mut(&meta.category) {
            list.retain(|&(_, id)| id != meta.id);
            if list.is_empty() {
                self.by_category.remove(&meta.category);
            }
        }
        self.epoch += 1;
    }

    /// Rebuilds the geo grid from `clips`, skipping `skip` (the clip
    /// being replaced). Matches the paper's periodic batch compaction.
    pub fn rebuild_geo<'a>(
        &mut self,
        clips: impl Iterator<Item = &'a ClipMetadata>,
        skip: ClipId,
        projection: &LocalProjection,
    ) {
        self.geo.clear();
        // Grid cells keep entries in insertion order and queries echo
        // that order, so the rebuild must visit clips in a fixed order
        // or query results depend on the caller's (possibly
        // hash-ordered) iteration.
        let mut metas: Vec<&ClipMetadata> = clips.filter(|m| m.id != skip).collect();
        metas.sort_unstable_by_key(|m| m.id.0);
        for m in metas {
            if let Some(tag) = m.geo {
                self.geo.insert(projection.project(tag.point), m.id);
            }
        }
        self.epoch += 1;
    }

    /// All categories that currently hold at least one clip, in
    /// ascending id order.
    pub fn categories(&self) -> impl Iterator<Item = CategoryId> + '_ {
        // lint: allow(hash-iter) — keys are collected and sorted before the iterator is handed out
        let mut out: Vec<CategoryId> = self.by_category.keys().copied().collect();
        out.sort_unstable();
        out.into_iter()
    }

    /// The full posting list of one category (ascending by published).
    #[must_use]
    pub fn postings(&self, category: CategoryId) -> &[Posting] {
        self.by_category.get(&category).map_or(&[], Vec::as_slice)
    }

    /// Postings of `category` published at or after `since`, found by
    /// binary search over the ordered posting list — O(log n + hits).
    #[must_use]
    pub fn postings_since(&self, category: CategoryId, since: TimePoint) -> &[Posting] {
        let list = self.postings(category);
        let from = list.partition_point(|&(published, _)| published < since);
        &list[from..]
    }

    /// The geo grid (projected tag position → clip id).
    #[must_use]
    pub fn geo(&self) -> &GridIndex<ClipId> {
        &self.geo
    }

    /// Largest geo-tag radius ever indexed, meters.
    #[must_use]
    pub fn max_tag_radius_m(&self) -> f64 {
        self.max_tag_radius_m
    }

    /// Overwrites the epoch and radius watermark after a snapshot
    /// restore. Rebuilding the index by re-inserting surviving clips
    /// reproduces the posting lists and geo grid exactly, but the
    /// epoch also counts removals and rebuilds from the previous
    /// incarnation — caches keyed on it must not see the clock run
    /// backwards.
    pub fn restore_meta(&mut self, epoch: u64, max_tag_radius_m: f64) {
        self.epoch = epoch;
        self.max_tag_radius_m = max_tag_radius_m;
    }

    /// Geo-tagged clip ids whose projected tag falls inside the padded
    /// rectangle `[min, max]`.
    #[must_use]
    pub fn geo_in_rect(
        &self,
        min: ProjectedPoint,
        max: ProjectedPoint,
    ) -> Vec<(ProjectedPoint, ClipId)> {
        self.geo.query_rect(min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clipmeta::{ClipKind, GeoTag};
    use pphcr_geo::{GeoPoint, TimeSpan};

    const TORINO: GeoPoint = GeoPoint { lat: 45.0703, lon: 7.6869 };

    fn meta(id: u64, cat: u16, published: TimePoint) -> ClipMetadata {
        ClipMetadata {
            id: ClipId(id),
            title: format!("clip {id}"),
            kind: ClipKind::Podcast,
            category: CategoryId::new(cat),
            category_confidence: 1.0,
            duration: TimeSpan::minutes(5),
            published,
            geo: None,
            transcript: Vec::new(),
        }
    }

    #[test]
    fn postings_stay_sorted_regardless_of_ingest_order() {
        let proj = LocalProjection::new(TORINO);
        let mut idx = RepositoryIndex::new(2_000.0);
        idx.insert(&meta(3, 5, TimePoint::at(0, 9, 0, 0)), &proj);
        idx.insert(&meta(1, 5, TimePoint::at(0, 6, 0, 0)), &proj);
        idx.insert(&meta(2, 5, TimePoint::at(0, 7, 30, 0)), &proj);
        let ids: Vec<u64> = idx.postings(CategoryId::new(5)).iter().map(|&(_, id)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn postings_since_is_a_suffix_cut() {
        let proj = LocalProjection::new(TORINO);
        let mut idx = RepositoryIndex::new(2_000.0);
        for i in 0..10u64 {
            idx.insert(&meta(i, 2, TimePoint::at(0, i, 0, 0)), &proj);
        }
        let fresh = idx.postings_since(CategoryId::new(2), TimePoint::at(0, 6, 0, 0));
        let ids: Vec<u64> = fresh.iter().map(|&(_, id)| id.0).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "inclusive at the cutoff instant");
        assert!(idx.postings_since(CategoryId::new(2), TimePoint::at(1, 0, 0, 0)).is_empty());
        assert_eq!(idx.postings_since(CategoryId::new(2), TimePoint::EPOCH).len(), 10);
    }

    #[test]
    fn equal_publish_instants_are_ordered_by_id() {
        let proj = LocalProjection::new(TORINO);
        let mut idx = RepositoryIndex::new(2_000.0);
        let t = TimePoint::at(0, 8, 0, 0);
        idx.insert(&meta(9, 1, t), &proj);
        idx.insert(&meta(4, 1, t), &proj);
        idx.insert(&meta(7, 1, t), &proj);
        let ids: Vec<u64> = idx.postings(CategoryId::new(1)).iter().map(|&(_, id)| id.0).collect();
        assert_eq!(ids, vec![4, 7, 9]);
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let proj = LocalProjection::new(TORINO);
        let mut idx = RepositoryIndex::new(2_000.0);
        assert_eq!(idx.epoch(), 0);
        let m = meta(1, 3, TimePoint::at(0, 6, 0, 0));
        idx.insert(&m, &proj);
        assert_eq!(idx.epoch(), 1);
        idx.remove(&m);
        assert_eq!(idx.epoch(), 2);
        assert!(idx.postings(CategoryId::new(3)).is_empty());
    }

    #[test]
    fn geo_side_tracks_tags_and_radius() {
        let proj = LocalProjection::new(TORINO);
        let mut idx = RepositoryIndex::new(2_000.0);
        let mut m = meta(1, 3, TimePoint::at(0, 6, 0, 0));
        m.geo = Some(GeoTag { point: TORINO.destination(90.0, 1_000.0), radius_m: 750.0 });
        idx.insert(&m, &proj);
        assert_eq!(idx.geo().len(), 1);
        assert!((idx.max_tag_radius_m() - 750.0).abs() < 1e-12);
        idx.rebuild_geo([m.clone()].iter(), ClipId(1), &proj);
        assert!(idx.geo().is_empty());
    }

    #[test]
    fn rebuild_geo_is_iteration_order_independent() {
        // Regression: T3 witness `apply_record → ingest_clip → ingest →
        // rebuild_geo` — grid cells echo insertion order into query
        // results, so the rebuild must not echo hash-map order.
        let proj = LocalProjection::new(TORINO);
        let tag = |brg: f64| GeoTag { point: TORINO.destination(brg, 500.0), radius_m: 100.0 };
        let mut a = meta(1, 3, TimePoint::at(0, 6, 0, 0));
        a.geo = Some(tag(10.0));
        let mut b = meta(2, 3, TimePoint::at(0, 7, 0, 0));
        b.geo = Some(tag(11.0));
        let ids_after = |order: Vec<&ClipMetadata>| {
            let mut idx = RepositoryIndex::new(50_000.0);
            idx.rebuild_geo(order.into_iter(), ClipId(99), &proj);
            idx.geo()
                .query_radius(proj.project(TORINO), 10_000.0)
                .into_iter()
                .map(|(_, id)| id.0)
                .collect::<Vec<u64>>()
        };
        assert_eq!(ids_after(vec![&a, &b]), vec![1, 2]);
        assert_eq!(ids_after(vec![&b, &a]), vec![1, 2], "rebuild must not echo caller order");
    }

    #[test]
    fn categories_come_out_sorted() {
        // Regression: T3 witness `candidates_indexed_excluding_stats →
        // indexed_categories → categories` — the category sweep order
        // must not depend on hash-map key order.
        let proj = LocalProjection::new(TORINO);
        let mut idx = RepositoryIndex::new(2_000.0);
        for (id, cat) in [(1u64, 9u16), (2, 3), (3, 7), (4, 3)] {
            idx.insert(&meta(id, cat, TimePoint::at(0, 6, 0, 0)), &proj);
        }
        let cats: Vec<CategoryId> = idx.categories().collect();
        assert_eq!(cats, vec![CategoryId::new(3), CategoryId::new(7), CategoryId::new(9)]);
    }
}
