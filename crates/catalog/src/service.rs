//! Radio services and their bearers.
//!
//! A hybrid-radio service is the *same* programme reachable over
//! several bearers — FM, DAB+ or an IP stream — identified in the
//! `RadioDNS` manner (ETSI TS 103 270, the paper's reference [9]): an FM
//! bearer is keyed by country code + PI code + frequency, a DAB bearer
//! by EId/SId, an IP bearer by stream URL. The client picks the cheapest
//! bearer that carries the service; that choice is what the paper's
//! network-resource-optimization claim rests on.

use pphcr_audio::{Bitrate, LiveSource};
use serde::{Deserialize, Serialize};

/// Dense index of a service within the platform (Rai runs 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServiceIndex(pub u32);

impl std::fmt::Display for ServiceIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service:{}", self.0)
    }
}

/// One way of receiving a service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Bearer {
    /// Analogue FM: extended country code, PI code, frequency in kHz —
    /// the key fields of a `RadioDNS` `fm/` lookup.
    Fm {
        /// Global country code (GCC) as in `RadioDNS`, e.g. "5e0" for Italy.
        gcc: String,
        /// RDS programme identification code.
        pi: u16,
        /// Carrier frequency, kHz.
        frequency_khz: u32,
    },
    /// DAB+: ensemble id and service id.
    Dab {
        /// Ensemble identifier.
        eid: u16,
        /// Service identifier.
        sid: u32,
    },
    /// Internet stream.
    Ip {
        /// Stream URL.
        url: String,
    },
}

impl Bearer {
    /// True for broadcast bearers (FM/DAB), which cost nothing per
    /// additional listener.
    #[must_use]
    pub fn is_broadcast(&self) -> bool {
        !matches!(self, Bearer::Ip { .. })
    }

    /// RadioDNS-style lookup key for the bearer.
    #[must_use]
    pub fn radiodns_key(&self) -> String {
        match self {
            Bearer::Fm { gcc, pi, frequency_khz } => {
                // fm/<gcc>/<pi>/<freq in 10 kHz units, 5 digits>
                format!("fm/{gcc}/{pi:04x}/{:05}", frequency_khz / 10)
            }
            Bearer::Dab { eid, sid } => format!("dab/{eid:04x}/{sid:08x}"),
            Bearer::Ip { url } => format!("ip/{url}"),
        }
    }
}

/// A live radio service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Service {
    /// Platform-local index.
    pub index: ServiceIndex,
    /// Human name ("Rai Radio1", …).
    pub name: String,
    /// Ways of receiving the service, preferred first.
    pub bearers: Vec<Bearer>,
    /// Stream bit rate (96 kbps for Rai's streams).
    pub bitrate: Bitrate,
}

impl Service {
    /// The deterministic audio source carrying this service.
    #[must_use]
    pub fn live_source(&self) -> LiveSource {
        LiveSource::new(self.index.0)
    }

    /// True when at least one bearer is broadcast.
    #[must_use]
    pub fn has_broadcast_bearer(&self) -> bool {
        self.bearers.iter().any(Bearer::is_broadcast)
    }

    /// Builds the paper's 10-service Rai-like line-up, each with an FM,
    /// a DAB and an IP bearer at 96 kbps.
    #[must_use]
    pub fn rai_lineup() -> Vec<Service> {
        (0..10u32)
            .map(|i| Service {
                index: ServiceIndex(i),
                name: format!("Radio {}", i + 1),
                bearers: vec![
                    Bearer::Fm {
                        gcc: "5e0".to_string(),
                        pi: 0x5201 + i as u16,
                        frequency_khz: 89_300 + i * 400,
                    },
                    Bearer::Dab { eid: 0x5064, sid: 0x0005_2010 + i },
                    Bearer::Ip { url: format!("http://stream.example/radio{}", i + 1) },
                ],
                bitrate: Bitrate::LIVE_STREAM,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_audio::AudioSource;

    #[test]
    fn lineup_has_ten_hybrid_services() {
        let lineup = Service::rai_lineup();
        assert_eq!(lineup.len(), 10);
        for s in &lineup {
            assert!(s.has_broadcast_bearer());
            assert!(s.bearers.iter().any(|b| !b.is_broadcast()));
            assert_eq!(s.bitrate, Bitrate::LIVE_STREAM);
        }
    }

    #[test]
    fn live_sources_are_distinct() {
        let lineup = Service::rai_lineup();
        let a = lineup[0].live_source();
        let b = lineup[1].live_source();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn radiodns_keys() {
        let fm = Bearer::Fm { gcc: "5e0".into(), pi: 0x5201, frequency_khz: 89_300 };
        assert_eq!(fm.radiodns_key(), "fm/5e0/5201/08930");
        let dab = Bearer::Dab { eid: 0x5064, sid: 0x52010 };
        assert_eq!(dab.radiodns_key(), "dab/5064/00052010");
        let ip = Bearer::Ip { url: "http://x/y".into() };
        assert_eq!(ip.radiodns_key(), "ip/http://x/y");
    }

    #[test]
    fn broadcast_classification() {
        assert!(Bearer::Dab { eid: 1, sid: 2 }.is_broadcast());
        assert!(Bearer::Fm { gcc: "5e0".into(), pi: 1, frequency_khz: 100_000 }.is_broadcast());
        assert!(!Bearer::Ip { url: "u".into() }.is_broadcast());
    }

    #[test]
    fn lineup_keys_are_unique() {
        let lineup = Service::rai_lineup();
        let mut keys: Vec<String> =
            lineup.iter().flat_map(|s| s.bearers.iter().map(Bearer::radiodns_key)).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }
}
