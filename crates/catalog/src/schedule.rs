//! The electronic programme guide (EPG).
//!
//! Schedule metadata is what makes the replacement of Fig. 4 possible:
//! the client knows that "Program 2" runs 10:55–11:10, so it can align
//! clip boundaries with programme boundaries and time-shift the live
//! stream by exactly the displacement the replacement introduced. The
//! schedule is a per-service, non-overlapping sequence of programmes on
//! the platform clock.

use crate::category::CategoryId;
use crate::service::ServiceIndex;
use pphcr_geo::time::TimeInterval;
use pphcr_geo::TimePoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a scheduled programme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProgrammeId(pub u64);

impl std::fmt::Display for ProgrammeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "programme:{}", self.0)
    }
}

/// One scheduled programme on one service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Programme {
    /// The programme's id.
    pub id: ProgrammeId,
    /// Service it airs on.
    pub service: ServiceIndex,
    /// Editorial title ("Wikiradio", "Decanter", …).
    pub title: String,
    /// Editorial category.
    pub category: CategoryId,
    /// Air time.
    pub interval: TimeInterval,
}

/// Why a programme could not be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The programme overlaps an existing one on the same service.
    Overlaps {
        /// The already-scheduled programme it collides with.
        existing: ProgrammeId,
    },
    /// The programme interval is empty.
    EmptyInterval,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Overlaps { existing } => {
                write!(f, "programme overlaps {existing}")
            }
            ScheduleError::EmptyInterval => write!(f, "programme interval is empty"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The EPG: per-service programme timelines.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// Programmes per service, kept sorted by start time.
    by_service: HashMap<ServiceIndex, Vec<Programme>>,
}

impl Schedule {
    /// Creates an empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Adds a programme, rejecting overlaps on its service.
    ///
    /// # Errors
    /// [`ScheduleError::Overlaps`] or [`ScheduleError::EmptyInterval`].
    pub fn add(&mut self, programme: Programme) -> Result<(), ScheduleError> {
        if programme.interval.is_empty() {
            return Err(ScheduleError::EmptyInterval);
        }
        let slots = self.by_service.entry(programme.service).or_default();
        if let Some(existing) = slots.iter().find(|p| p.interval.overlaps(programme.interval)) {
            return Err(ScheduleError::Overlaps { existing: existing.id });
        }
        let idx = slots.partition_point(|p| p.interval.start < programme.interval.start);
        slots.insert(idx, programme);
        Ok(())
    }

    /// The programme airing on `service` at instant `t`.
    #[must_use]
    pub fn programme_at(&self, service: ServiceIndex, t: TimePoint) -> Option<&Programme> {
        let slots = self.by_service.get(&service)?;
        let idx = slots.partition_point(|p| p.interval.start <= t);
        idx.checked_sub(1).map(|i| &slots[i]).filter(|p| p.interval.contains(t))
    }

    /// The first programme on `service` starting at or after `t`.
    #[must_use]
    pub fn next_programme(&self, service: ServiceIndex, t: TimePoint) -> Option<&Programme> {
        let slots = self.by_service.get(&service)?;
        let idx = slots.partition_point(|p| p.interval.start < t);
        slots.get(idx)
    }

    /// Programmes on `service` overlapping `window`, in air order.
    #[must_use]
    pub fn programmes_in(&self, service: ServiceIndex, window: TimeInterval) -> Vec<&Programme> {
        self.by_service
            .get(&service)
            .map(|slots| slots.iter().filter(|p| p.interval.overlaps(window)).collect())
            .unwrap_or_default()
    }

    /// All programmes on `service`, in air order.
    #[must_use]
    pub fn service_programmes(&self, service: ServiceIndex) -> &[Programme] {
        self.by_service.get(&service).map_or(&[], Vec::as_slice)
    }

    /// Total number of scheduled programmes.
    #[must_use]
    // lint: allow(reach-hash-iter) — a sum over per-service lengths is visit-order insensitive
    pub fn len(&self) -> usize {
        self.by_service.values().map(Vec::len).sum()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks a programme up by id. Nothing stops the same id being
    /// scheduled on two services, so the scan visits services in
    /// ascending order to make the winner deterministic.
    #[must_use]
    pub fn get(&self, id: ProgrammeId) -> Option<&Programme> {
        // lint: allow(hash-iter) — service keys are collected and sorted before the scan
        let mut services: Vec<ServiceIndex> = self.by_service.keys().copied().collect();
        services.sort_unstable();
        services.into_iter().find_map(|s| self.by_service[&s].iter().find(|p| p.id == id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(id: u64, service: u32, start: TimePoint, end: TimePoint) -> Programme {
        Programme {
            id: ProgrammeId(id),
            service: ServiceIndex(service),
            title: format!("Programme {id}"),
            category: CategoryId::new((id % 30) as u16),
            interval: TimeInterval::new(start, end),
        }
    }

    /// The Fig. 4 morning on one service.
    fn fig4_schedule() -> Schedule {
        let mut s = Schedule::new();
        s.add(prog(1, 0, TimePoint::at(0, 10, 42, 30), TimePoint::at(0, 10, 55, 0))).unwrap();
        s.add(prog(2, 0, TimePoint::at(0, 10, 55, 0), TimePoint::at(0, 11, 10, 0))).unwrap();
        s.add(prog(3, 0, TimePoint::at(0, 11, 10, 0), TimePoint::at(0, 11, 20, 0))).unwrap();
        s
    }

    #[test]
    fn programme_at_boundaries() {
        let s = fig4_schedule();
        let svc = ServiceIndex(0);
        assert_eq!(s.programme_at(svc, TimePoint::at(0, 10, 50, 0)).unwrap().id, ProgrammeId(1));
        // Boundary belongs to the next programme (half-open intervals).
        assert_eq!(s.programme_at(svc, TimePoint::at(0, 10, 55, 0)).unwrap().id, ProgrammeId(2));
        assert_eq!(s.programme_at(svc, TimePoint::at(0, 11, 19, 59)).unwrap().id, ProgrammeId(3));
        assert!(s.programme_at(svc, TimePoint::at(0, 11, 20, 0)).is_none());
        assert!(s.programme_at(svc, TimePoint::at(0, 9, 0, 0)).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let mut s = fig4_schedule();
        let err =
            s.add(prog(9, 0, TimePoint::at(0, 11, 0, 0), TimePoint::at(0, 11, 5, 0))).unwrap_err();
        assert_eq!(err, ScheduleError::Overlaps { existing: ProgrammeId(2) });
        // Same time on another service is fine.
        s.add(prog(9, 1, TimePoint::at(0, 11, 0, 0), TimePoint::at(0, 11, 5, 0))).unwrap();
    }

    #[test]
    fn empty_interval_rejected() {
        let mut s = Schedule::new();
        let t = TimePoint::at(0, 10, 0, 0);
        assert_eq!(s.add(prog(1, 0, t, t)).unwrap_err(), ScheduleError::EmptyInterval);
    }

    #[test]
    fn next_programme_lookup() {
        let s = fig4_schedule();
        let svc = ServiceIndex(0);
        let next = s.next_programme(svc, TimePoint::at(0, 10, 50, 0)).unwrap();
        assert_eq!(next.id, ProgrammeId(2));
        // At an exact start, that programme is "next".
        let at = s.next_programme(svc, TimePoint::at(0, 10, 55, 0)).unwrap();
        assert_eq!(at.id, ProgrammeId(2));
        assert!(s.next_programme(svc, TimePoint::at(0, 12, 0, 0)).is_none());
    }

    #[test]
    fn programmes_in_window() {
        let s = fig4_schedule();
        let svc = ServiceIndex(0);
        let window = TimeInterval::new(TimePoint::at(0, 10, 54, 0), TimePoint::at(0, 11, 11, 0));
        let progs = s.programmes_in(svc, window);
        let ids: Vec<u64> = progs.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn out_of_order_insertion_stays_sorted() {
        let mut s = Schedule::new();
        s.add(prog(2, 0, TimePoint(200), TimePoint(300))).unwrap();
        s.add(prog(1, 0, TimePoint(0), TimePoint(100))).unwrap();
        s.add(prog(3, 0, TimePoint(100), TimePoint(200))).unwrap();
        let ids: Vec<u64> = s.service_programmes(ServiceIndex(0)).iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 3, 2]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn get_by_id() {
        let s = fig4_schedule();
        assert_eq!(s.get(ProgrammeId(2)).unwrap().title, "Programme 2");
        assert!(s.get(ProgrammeId(77)).is_none());
    }

    #[test]
    fn get_with_duplicate_id_prefers_lowest_service() {
        // Regression: T3 witness `candidates… → Schedule::get` — with
        // the same id scheduled on two services, the winner used to be
        // hash-map visit order.
        let mut s = Schedule::new();
        for service in [4u32, 0, 2] {
            let mut p = prog(7, service, TimePoint(0), TimePoint(100));
            p.title = format!("on service {service}");
            s.add(p).unwrap();
        }
        assert_eq!(s.get(ProgrammeId(7)).unwrap().title, "on service 0");
    }
}
