//! Content metadata for PPHCR: services, schedules, clips and the
//! content repository.
//!
//! This crate is the metadata DB of the paper's architecture (Fig. 3):
//! Radio Rai "directly provides 10 live 96kbps audio streams, the
//! editorial version of more than 100 podcasts created every day and
//! the associated schedule metadata \[which\] are used to populate the
//! content repository and the metadata DB". Services are identified in
//! the `RadioDNS` style of ETSI TS 103 270, the standard the paper builds
//! on.
//!
//! Modules:
//!
//! * [`category`] — the 30 editorial categories,
//! * [`service`] — radio services and their broadcast/IP bearers,
//! * [`schedule`] — the EPG: programmes on a timeline per service,
//! * [`clipmeta`] — per-clip editorial metadata (category, geo tag,
//!   transcript),
//! * [`index`] — the incremental query index (posting lists + geo grid),
//! * [`repository`] — the queryable content repository.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod category;
pub mod clipmeta;
pub mod gazetteer;
pub mod index;
pub mod repository;
pub mod schedule;
pub mod service;

pub use category::{CategoryId, CATEGORY_COUNT};
pub use clipmeta::{ClipKind, ClipMetadata, GeoTag};
pub use gazetteer::{Gazetteer, Place};
pub use index::RepositoryIndex;
pub use repository::ContentRepository;
pub use schedule::{Programme, ProgrammeId, Schedule, ScheduleError};
pub use service::{Bearer, Service, ServiceIndex};
