//! Per-clip editorial metadata.
//!
//! The metadata half of a stored clip (the audio half lives in
//! `pphcr-audio::ClipStore`, keyed by the same [`ClipId`]). The fields
//! mirror what the paper's clip-data-management component derives:
//! editorial category (from the Bayesian classifier), publication time
//! (freshness matters for news), duration, an optional geographic tag
//! (the paper's future-work "geographic relevance of audio items",
//! which Fig. 2's location-pinned item B already requires), and the
//! transcript tokens the classifier saw.

use crate::category::CategoryId;
use pphcr_audio::ClipId;
use pphcr_geo::{GeoPoint, TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};

/// The editorial kind of a clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClipKind {
    /// A podcast segment (the bulk of the repository: 100+/day).
    Podcast,
    /// A news bulletin — fresh, speech-heavy, ASR-classified.
    NewsBulletin,
    /// A music track.
    MusicTrack,
    /// A targeted advertisement.
    Advertisement,
}

/// A geographic relevance tag: the clip is about a place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoTag {
    /// The place the clip is about.
    pub point: GeoPoint,
    /// Radius of relevance around the place, meters.
    pub radius_m: f64,
}

impl GeoTag {
    /// True when `p` is within the tag's relevance radius.
    #[must_use]
    pub fn covers(&self, p: GeoPoint) -> bool {
        self.point.haversine_m(p) <= self.radius_m
    }
}

/// Editorial metadata of one clip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipMetadata {
    /// The clip's id (shared with the audio store).
    pub id: ClipId,
    /// Editorial title.
    pub title: String,
    /// Kind of content.
    pub kind: ClipKind,
    /// Classified category.
    pub category: CategoryId,
    /// Classifier confidence for `category`, in `(0, 1]` (1.0 for
    /// editorially labelled clips).
    pub category_confidence: f64,
    /// Playback duration.
    pub duration: TimeSpan,
    /// Publication instant.
    pub published: TimePoint,
    /// Optional geographic relevance.
    pub geo: Option<GeoTag>,
    /// Transcript tokens (interned ids in the platform vocabulary);
    /// empty for music.
    pub transcript: Vec<u32>,
}

impl ClipMetadata {
    /// Freshness of the clip at `now`: 1.0 at publication, decaying
    /// exponentially with half-life `half_life`.
    #[must_use]
    pub fn freshness(&self, now: TimePoint, half_life: TimeSpan) -> f64 {
        let age = now.since(self.published).as_seconds() as f64;
        let hl = half_life.as_seconds().max(1) as f64;
        0.5f64.powf(age / hl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(published: TimePoint) -> ClipMetadata {
        ClipMetadata {
            id: ClipId(1),
            title: "Decanter: Champagne, Cava e Prosecco".into(),
            kind: ClipKind::Podcast,
            category: CategoryId::new(8),
            category_confidence: 0.9,
            duration: TimeSpan::minutes(15),
            published,
            geo: None,
            transcript: vec![1, 2, 3],
        }
    }

    #[test]
    fn freshness_decays_with_half_life() {
        let m = meta(TimePoint::at(0, 6, 0, 0));
        let hl = TimeSpan::hours(24);
        assert!((m.freshness(TimePoint::at(0, 6, 0, 0), hl) - 1.0).abs() < 1e-12);
        let one_hl = m.freshness(TimePoint::at(1, 6, 0, 0), hl);
        assert!((one_hl - 0.5).abs() < 1e-9);
        let two_hl = m.freshness(TimePoint::at(2, 6, 0, 0), hl);
        assert!((two_hl - 0.25).abs() < 1e-9);
    }

    #[test]
    fn freshness_before_publication_is_one() {
        let m = meta(TimePoint::at(1, 0, 0, 0));
        // `since` saturates: a clip "from the future" is simply fresh.
        assert_eq!(m.freshness(TimePoint::at(0, 0, 0, 0), TimeSpan::hours(1)), 1.0);
    }

    #[test]
    fn geotag_coverage() {
        let torino = GeoPoint::new(45.0703, 7.6869);
        let tag = GeoTag { point: torino, radius_m: 5_000.0 };
        assert!(tag.covers(torino.destination(90.0, 4_000.0)));
        assert!(!tag.covers(torino.destination(90.0, 6_000.0)));
    }
}
