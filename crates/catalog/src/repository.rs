//! The queryable content repository.
//!
//! Ingests the day's clips (paper: "more than 100 podcasts created
//! every day") and answers the recommender's candidate queries: by
//! category, by freshness, by duration window, and by geographic
//! relevance to a point or a projected route. All index structures
//! live in [`RepositoryIndex`] and are maintained incrementally on
//! ingest: per-category posting lists ordered by publication time
//! (freshness cutoffs are binary searches) and a uniform grid over
//! geo-tagged clips (route queries do not scan the archive).

use crate::category::CategoryId;
use crate::clipmeta::ClipMetadata;
use crate::index::RepositoryIndex;
use pphcr_audio::ClipId;
use pphcr_geo::{LocalProjection, Polyline, TimePoint, TimeSpan};
use std::collections::HashMap;

/// The content repository (metadata side).
#[derive(Debug)]
pub struct ContentRepository {
    clips: HashMap<ClipId, ClipMetadata>,
    index: RepositoryIndex,
    projection: LocalProjection,
}

impl ContentRepository {
    /// Creates an empty repository using `projection` for geo queries.
    #[must_use]
    pub fn new(projection: LocalProjection) -> Self {
        ContentRepository {
            clips: HashMap::new(),
            index: RepositoryIndex::new(2_000.0),
            projection,
        }
    }

    /// The repository's projection.
    #[must_use]
    pub fn projection(&self) -> &LocalProjection {
        &self.projection
    }

    /// The index epoch: bumped on every ingest, so caches derived from
    /// repository contents can detect staleness cheaply.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// Ingests one clip. Re-ingesting an id replaces the metadata but
    /// keeps index entries consistent.
    pub fn ingest(&mut self, meta: ClipMetadata) {
        if let Some(old) = self.clips.remove(&meta.id) {
            self.index.remove(&old);
            // Grid entries are append-only; rebuild lazily on replace.
            if old.geo.is_some() {
                // lint: allow(hash-iter) — rebuild_geo sorts the collected clips by id before touching the grid
                self.index.rebuild_geo(self.clips.values(), meta.id, &self.projection);
            }
        }
        self.index.insert(&meta, &self.projection);
        self.clips.insert(meta.id, meta);
    }

    /// Looks a clip up.
    #[must_use]
    pub fn get(&self, id: ClipId) -> Option<&ClipMetadata> {
        self.clips.get(&id)
    }

    /// Number of stored clips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// True when the repository holds no clips.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// All clips of one category, oldest first.
    #[must_use]
    pub fn by_category(&self, category: CategoryId) -> Vec<&ClipMetadata> {
        self.index.postings(category).iter().filter_map(|&(_, id)| self.clips.get(&id)).collect()
    }

    /// Number of indexed clips in one category — the posting-list
    /// length, read in O(1) without visiting any clip.
    #[must_use]
    pub fn category_len(&self, category: CategoryId) -> usize {
        self.index.postings(category).len()
    }

    /// All categories that currently hold at least one clip
    /// (unspecified order).
    pub fn indexed_categories(&self) -> impl Iterator<Item = CategoryId> + '_ {
        self.index.categories()
    }

    /// Clips of `category` published at or after `since`, oldest first.
    /// Binary search over the category's posting list: O(log n + hits).
    pub fn fresh_in_category(
        &self,
        category: CategoryId,
        since: TimePoint,
    ) -> impl Iterator<Item = &ClipMetadata> {
        self.index.postings_since(category, since).iter().filter_map(|&(_, id)| self.clips.get(&id))
    }

    /// Clips published at or after `since`, newest first.
    #[must_use]
    pub fn published_since(&self, since: TimePoint) -> Vec<&ClipMetadata> {
        let mut out: Vec<&ClipMetadata> =
            self.clips.values().filter(|m| m.published >= since).collect();
        out.sort_by(|a, b| b.published.cmp(&a.published).then(a.id.cmp(&b.id)));
        out
    }

    /// Clips whose duration fits `[min, max]`.
    #[must_use]
    pub fn by_duration(&self, min: TimeSpan, max: TimeSpan) -> Vec<&ClipMetadata> {
        self.clips.values().filter(|m| m.duration >= min && m.duration <= max).collect()
    }

    /// Geo-tagged clips whose tag lies within `radius_m` of `point`
    /// (projected frame).
    #[must_use]
    pub fn geo_near(&self, point: pphcr_geo::ProjectedPoint, radius_m: f64) -> Vec<&ClipMetadata> {
        self.index
            .geo()
            .query_radius(point, radius_m)
            .into_iter()
            .filter_map(|(_, id)| self.clips.get(&id))
            .collect()
    }

    /// Geo-tagged clips relevant to a route: tags within `corridor_m`
    /// of the polyline, each with its along-route position (meters from
    /// the route start). Sorted by along-route position. This is how
    /// Fig. 2's item B (relevant to the location `L_B` the user will
    /// reach) is found.
    #[must_use]
    pub fn geo_along_route(&self, route: &Polyline, corridor_m: f64) -> Vec<(&ClipMetadata, f64)> {
        let mut out = Vec::new();
        if route.is_empty() {
            return out;
        }
        // Candidate window: route bbox padded by the corridor. The grid
        // clamps to occupied cells, so an oversized rect stays cheap.
        let (mut min_x, mut min_y, mut max_x, mut max_y) =
            (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in route.points() {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let pad = corridor_m.max(self.index.max_tag_radius_m());
        let candidates = self.index.geo_in_rect(
            pphcr_geo::ProjectedPoint::new(min_x - pad, min_y - pad),
            pphcr_geo::ProjectedPoint::new(max_x + pad, max_y + pad),
        );
        for (pos, id) in candidates {
            let Some(meta) = self.clips.get(&id) else { continue };
            let Some(tag) = meta.geo else { continue };
            let Some(projection) = route.project_point(pos) else { continue };
            // Within the corridor, or within the tag's own radius.
            if projection.distance_m <= corridor_m.max(tag.radius_m) {
                out.push((meta, projection.along_m));
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        out
    }

    /// Iterates over all clips (unspecified order).
    // lint: allow(reach-hash-iter) — every caller sorts (snapshot, by clip id) or feeds an order-insensitive fold (finalize re-sorts by score then id)
    pub fn iter(&self) -> impl Iterator<Item = &ClipMetadata> {
        self.clips.values()
    }

    /// Largest geo-tag radius ever indexed, meters (persisted alongside
    /// the epoch because a removed clip can still hold the watermark).
    #[must_use]
    pub fn max_tag_radius_m(&self) -> f64 {
        self.index.max_tag_radius_m()
    }

    /// Restores the index epoch and radius watermark after rebuilding
    /// the repository from persisted clip metadata. See
    /// [`RepositoryIndex::restore_meta`].
    pub fn restore_index_meta(&mut self, epoch: u64, max_tag_radius_m: f64) {
        self.index.restore_meta(epoch, max_tag_radius_m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clipmeta::{ClipKind, GeoTag};
    use pphcr_geo::{GeoPoint, ProjectedPoint};

    const TORINO: GeoPoint = GeoPoint { lat: 45.0703, lon: 7.6869 };

    fn meta(id: u64, cat: u16, published: TimePoint, dur_min: u64) -> ClipMetadata {
        ClipMetadata {
            id: ClipId(id),
            title: format!("Clip {id}"),
            kind: ClipKind::Podcast,
            category: CategoryId::new(cat),
            category_confidence: 1.0,
            duration: TimeSpan::minutes(dur_min),
            published,
            geo: None,
            transcript: Vec::new(),
        }
    }

    fn repo() -> ContentRepository {
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        r.ingest(meta(1, 8, TimePoint::at(0, 6, 0, 0), 15));
        r.ingest(meta(2, 8, TimePoint::at(0, 9, 0, 0), 5));
        r.ingest(meta(3, 5, TimePoint::at(0, 7, 0, 0), 30));
        r
    }

    #[test]
    fn category_query() {
        let r = repo();
        let wine = r.by_category(CategoryId::new(8));
        assert_eq!(wine.len(), 2);
        assert!(r.by_category(CategoryId::new(9)).is_empty());
    }

    #[test]
    fn fresh_in_category_uses_the_posting_cut() {
        let r = repo();
        let fresh: Vec<u64> = r
            .fresh_in_category(CategoryId::new(8), TimePoint::at(0, 7, 0, 0))
            .map(|m| m.id.0)
            .collect();
        assert_eq!(fresh, vec![2]);
        let all: Vec<u64> =
            r.fresh_in_category(CategoryId::new(8), TimePoint::EPOCH).map(|m| m.id.0).collect();
        assert_eq!(all, vec![1, 2], "oldest first");
    }

    #[test]
    fn epoch_advances_with_ingest() {
        let mut r = repo();
        let before = r.epoch();
        r.ingest(meta(4, 5, TimePoint::at(0, 11, 0, 0), 7));
        assert!(r.epoch() > before);
    }

    #[test]
    fn published_since_sorted_newest_first() {
        let r = repo();
        let recent = r.published_since(TimePoint::at(0, 6, 30, 0));
        let ids: Vec<u64> = recent.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn duration_window() {
        let r = repo();
        let fits = r.by_duration(TimeSpan::minutes(5), TimeSpan::minutes(20));
        let mut ids: Vec<u64> = fits.iter().map(|m| m.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn reingest_replaces_cleanly() {
        let mut r = repo();
        let mut m = meta(1, 9, TimePoint::at(0, 10, 0, 0), 10);
        m.title = "Updated".into();
        r.ingest(m);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(ClipId(1)).unwrap().title, "Updated");
        assert_eq!(r.by_category(CategoryId::new(8)).len(), 1, "old index entry removed");
        assert_eq!(r.by_category(CategoryId::new(9)).len(), 1);
    }

    #[test]
    fn geo_near_query() {
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        let mut near = meta(10, 13, TimePoint::EPOCH, 3);
        near.geo = Some(GeoTag { point: TORINO.destination(90.0, 1_000.0), radius_m: 500.0 });
        let mut far = meta(11, 13, TimePoint::EPOCH, 3);
        far.geo = Some(GeoTag { point: TORINO.destination(90.0, 30_000.0), radius_m: 500.0 });
        r.ingest(near);
        r.ingest(far);
        let proj = *r.projection();
        let hits = r.geo_near(proj.project(TORINO), 2_000.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, ClipId(10));
    }

    #[test]
    fn geo_along_route_orders_by_position() {
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        // Route: 10 km due east of Torino.
        let proj = *r.projection();
        let route =
            Polyline::new(vec![ProjectedPoint::new(0.0, 0.0), ProjectedPoint::new(10_000.0, 0.0)]);
        // Tag at 7 km, 200 m off the road.
        let mut late = meta(20, 13, TimePoint::EPOCH, 3);
        late.geo = Some(GeoTag {
            point: proj.unproject(ProjectedPoint::new(7_000.0, 200.0)),
            radius_m: 300.0,
        });
        // Tag at 2 km, on the road.
        let mut early = meta(21, 13, TimePoint::EPOCH, 3);
        early.geo = Some(GeoTag {
            point: proj.unproject(ProjectedPoint::new(2_000.0, 0.0)),
            radius_m: 300.0,
        });
        // Tag 5 km off the corridor.
        let mut off = meta(22, 13, TimePoint::EPOCH, 3);
        off.geo = Some(GeoTag {
            point: proj.unproject(ProjectedPoint::new(5_000.0, 5_000.0)),
            radius_m: 300.0,
        });
        r.ingest(late);
        r.ingest(early);
        r.ingest(off);
        let hits = r.geo_along_route(&route, 500.0);
        let ids: Vec<u64> = hits.iter().map(|(m, _)| m.id.0).collect();
        assert_eq!(ids, vec![21, 20]);
        assert!((hits[0].1 - 2_000.0).abs() < 1.0);
        assert!((hits[1].1 - 7_000.0).abs() < 1.0);
    }

    #[test]
    fn geo_along_route_respects_tag_radius() {
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        let proj = *r.projection();
        let route =
            Polyline::new(vec![ProjectedPoint::new(0.0, 0.0), ProjectedPoint::new(10_000.0, 0.0)]);
        // A stadium-sized tag 2 km off the road still covers the route.
        let mut big = meta(30, 6, TimePoint::EPOCH, 3);
        big.geo = Some(GeoTag {
            point: proj.unproject(ProjectedPoint::new(5_000.0, 2_000.0)),
            radius_m: 3_000.0,
        });
        r.ingest(big);
        let hits = r.geo_along_route(&route, 500.0);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn empty_route_is_empty() {
        let r = repo();
        assert!(r.geo_along_route(&Polyline::new(vec![]), 500.0).is_empty());
    }
}
