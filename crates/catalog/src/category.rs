//! The 30 editorial categories.
//!
//! Paper §1.2: podcasts are classified "according to a set of 30
//! categories spacing from art to culture, music, economics". The
//! paper does not enumerate them; this list reconstructs a plausible
//! public-service taxonomy anchored on the four named ones.

use serde::{Deserialize, Serialize};

/// Number of editorial categories (fixed by the paper).
pub const CATEGORY_COUNT: u16 = 30;

/// Names of the categories, indexed by [`CategoryId`].
pub const CATEGORY_NAMES: [&str; CATEGORY_COUNT as usize] = [
    "art",           // 0 (named in the paper)
    "culture",       // 1 (named in the paper)
    "music",         // 2 (named in the paper)
    "economics",     // 3 (named in the paper)
    "politics",      // 4
    "football",      // 5 (Greg's nemesis in §2.1.1)
    "sports",        // 6
    "food",          // 7 (Lilly's favourite in §2.1.2)
    "wine",          // 8 ("Decanter" programme)
    "technology",    // 9 (Greg's favourite)
    "science",       // 10
    "health",        // 11
    "travel",        // 12
    "local-news",    // 13
    "national-news", // 14
    "world-news",    // 15
    "weather",       // 16
    "traffic",       // 17
    "entertainment", // 18
    "comedy",        // 19 ("The rabbit's roar")
    "cinema",        // 20
    "theatre",       // 21
    "literature",    // 22
    "history",       // 23
    "religion",      // 24
    "environment",   // 25
    "business",      // 26
    "education",     // 27
    "crime",         // 28
    "lifestyle",     // 29
];

/// Identifier of an editorial category (0–29).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CategoryId(pub u16);

impl CategoryId {
    /// Creates a category id after range-checking.
    ///
    /// # Panics
    /// Panics when `id >= CATEGORY_COUNT`.
    #[must_use]
    pub fn new(id: u16) -> Self {
        assert!(id < CATEGORY_COUNT, "category id {id} out of range");
        CategoryId(id)
    }

    /// The category's editorial name.
    #[must_use]
    pub fn name(self) -> &'static str {
        CATEGORY_NAMES[self.0 as usize]
    }

    /// Looks a category up by name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        CATEGORY_NAMES.iter().position(|&n| n == name).map(|i| CategoryId(i as u16))
    }

    /// Iterates over all categories.
    pub fn all() -> impl Iterator<Item = CategoryId> {
        (0..CATEGORY_COUNT).map(CategoryId)
    }
}

impl std::fmt::Display for CategoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_unique_names() {
        let mut names: Vec<&str> = CATEGORY_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn paper_named_categories_exist() {
        for name in ["art", "culture", "music", "economics"] {
            assert!(CategoryId::from_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn round_trip_name_lookup() {
        for c in CategoryId::all() {
            assert_eq!(CategoryId::from_name(c.name()), Some(c));
        }
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(CategoryId::new(8).to_string(), "wine");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = CategoryId::new(30);
    }

    #[test]
    fn all_yields_thirty() {
        assert_eq!(CategoryId::all().count(), 30);
    }
}
