//! The compact, discrete mobility model.
//!
//! The paper's batch job compacts raw GPS into a model that "describes
//! destination, trajectory, speed, frequency, time of the day and
//! complexity". Here:
//!
//! * destinations — [`StayPoint`]s (from [`crate::dbscan`]),
//! * trajectory — the RDP-simplified geometry per trip,
//! * speed — per-trip mean speed,
//! * frequency — visit counts per origin→destination [`RouteProfile`],
//! * time of the day — departure-hour histograms,
//! * complexity — the RDP turn-density metric.

use crate::dbscan::{stay_points, DbscanParams, StayPoint};
use crate::fix::{Trace, TripSegmenter};
use crate::rdp::{simplify, trajectory_complexity};
use pphcr_geo::{LocalProjection, Polyline, ProjectedPoint, TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A compacted trip: the discrete summary the tracking DB keeps instead
/// of the raw fixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripSummary {
    /// Index of the trip in chronological order.
    pub id: u32,
    /// Staying point the trip departed from, if one is near the start.
    pub origin: Option<u32>,
    /// Staying point the trip arrived at, if one is near the end.
    pub destination: Option<u32>,
    /// Departure time.
    pub start: TimePoint,
    /// Arrival time.
    pub end: TimePoint,
    /// Path length, meters.
    pub length_m: f64,
    /// Mean reported speed, m/s.
    pub mean_speed_mps: f64,
    /// RDP turn-density complexity of the trip.
    pub complexity: f64,
    /// RDP-simplified geometry in the projected frame.
    pub geometry: Vec<ProjectedPoint>,
}

impl TripSummary {
    /// Trip duration.
    #[must_use]
    pub fn duration(&self) -> TimeSpan {
        self.end.since(self.start)
    }

    /// Departure hour of day (0–23).
    #[must_use]
    pub fn departure_hour(&self) -> u64 {
        self.start.hour_of_day()
    }

    /// The simplified geometry as a measured polyline.
    #[must_use]
    pub fn polyline(&self) -> Polyline {
        Polyline::new(self.geometry.clone())
    }
}

/// Aggregate statistics for one origin→destination pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteProfile {
    /// Origin staying point.
    pub origin: u32,
    /// Destination staying point.
    pub destination: u32,
    /// How many recorded trips took this route (the "frequency" feature).
    pub trip_count: usize,
    /// Mean trip duration, seconds.
    pub mean_duration_s: f64,
    /// Standard deviation of trip duration, seconds.
    pub std_duration_s: f64,
    /// Mean path length, meters.
    pub mean_length_m: f64,
    /// Mean complexity.
    pub mean_complexity: f64,
    /// Departure-hour histogram (24 bins).
    pub hour_histogram: [u32; 24],
    /// Geometry of the most recent trip on this route.
    pub representative: Vec<ProjectedPoint>,
}

impl RouteProfile {
    /// Probability-like affinity of a departure at `hour` (Laplace
    /// smoothed so unseen hours keep a small mass).
    #[must_use]
    pub fn hour_affinity(&self, hour: u64) -> f64 {
        let total: u32 = self.hour_histogram.iter().sum();
        (f64::from(self.hour_histogram[(hour % 24) as usize]) + 1.0) / (f64::from(total) + 24.0)
    }

    /// Mean duration as a [`TimeSpan`] (rounded to seconds).
    #[must_use]
    pub fn mean_duration(&self) -> TimeSpan {
        TimeSpan::seconds(self.mean_duration_s.round().max(0.0) as u64)
    }
}

/// Configuration for building a [`MobilityModel`].
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Trip segmentation parameters.
    pub segmenter: TripSegmenter,
    /// Staying-point clustering parameters.
    pub dbscan: DbscanParams,
    /// Fixes faster than this do not contribute to staying points, m/s.
    pub stay_max_speed_mps: f64,
    /// A trip endpoint within this distance of a staying point is
    /// attached to it, meters.
    pub attach_radius_m: f64,
    /// RDP tolerance for trip geometry, meters.
    pub rdp_epsilon_m: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            segmenter: TripSegmenter::default(),
            dbscan: DbscanParams::default(),
            stay_max_speed_mps: 1.5,
            attach_radius_m: 250.0,
            rdp_epsilon_m: 15.0,
        }
    }
}

/// The compact mobility model for one listener.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MobilityModel {
    /// Significant places, ordered by total dwell (longest first).
    pub stay_points: Vec<StayPoint>,
    /// Compacted trips, chronological.
    pub trips: Vec<TripSummary>,
    /// Aggregates per (origin, destination) staying-point pair.
    pub profiles: HashMap<(u32, u32), RouteProfile>,
}

impl MobilityModel {
    /// Builds the model from a raw trace: segmentation → staying points
    /// → per-trip compaction → route aggregation. This is the paper's
    /// "periodically process and simplify" batch job.
    #[must_use]
    pub fn build(trace: &Trace, proj: &LocalProjection, cfg: &ModelConfig) -> Self {
        let stays = stay_points(trace, proj, cfg.dbscan, cfg.stay_max_speed_mps);
        let trips_raw = cfg.segmenter.segment(trace);
        let stay_positions: Vec<ProjectedPoint> =
            stays.iter().map(|s| proj.project(s.center)).collect();
        let attach = |p: ProjectedPoint| -> Option<u32> {
            stay_positions
                .iter()
                .enumerate()
                .map(|(i, sp)| (i, sp.distance_m(p)))
                .filter(|(_, d)| *d <= cfg.attach_radius_m)
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(i, _)| i as u32)
        };
        let mut trips = Vec::with_capacity(trips_raw.len());
        for (id, t) in trips_raw.iter().enumerate() {
            let pts: Vec<ProjectedPoint> =
                t.fixes().iter().map(|f| proj.project(f.point)).collect();
            // The segmenter yields non-empty trips today, but the model
            // builder must stay total: a degenerate empty trip is
            // dropped rather than panicking mid-compaction.
            let (Some(&first), Some(&last)) = (pts.first(), pts.last()) else { continue };
            let (Some(first_fix), Some(last_fix)) = (t.fixes().first(), t.fixes().last()) else {
                continue;
            };
            trips.push(TripSummary {
                id: id as u32,
                origin: attach(first),
                destination: attach(last),
                start: first_fix.time,
                end: last_fix.time,
                length_m: t.length_m(),
                mean_speed_mps: t.mean_speed_mps(),
                complexity: trajectory_complexity(&pts, cfg.rdp_epsilon_m),
                geometry: simplify(&pts, cfg.rdp_epsilon_m),
            });
        }
        let profiles = aggregate_profiles(&trips);
        MobilityModel { stay_points: stays, trips, profiles }
    }

    /// Profiles departing from `origin`, sorted by descending
    /// frequency (ties broken by destination for determinism).
    #[must_use]
    // lint: allow(reach-hash-iter) — result fully sorted by (trip count desc, destination) before return
    pub fn routes_from(&self, origin: u32) -> Vec<&RouteProfile> {
        let mut out: Vec<&RouteProfile> =
            self.profiles.values().filter(|p| p.origin == origin).collect();
        out.sort_by_key(|p| (std::cmp::Reverse(p.trip_count), p.destination));
        out
    }

    /// The staying point nearest to `p` within `radius_m`, if any.
    #[must_use]
    pub fn stay_near(
        &self,
        p: ProjectedPoint,
        proj: &LocalProjection,
        radius_m: f64,
    ) -> Option<&StayPoint> {
        self.stay_points
            .iter()
            .map(|s| (s, proj.project(s.center).distance_m(p)))
            .filter(|(_, d)| *d <= radius_m)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(s, _)| s)
    }

    /// Compression summary: raw fix count vs retained geometry vertices.
    #[must_use]
    pub fn compression_ratio(&self, raw_fix_count: usize) -> f64 {
        let kept: usize = self.trips.iter().map(|t| t.geometry.len()).sum();
        if kept == 0 {
            return f64::INFINITY;
        }
        raw_fix_count as f64 / kept as f64
    }
}

// lint: allow(reach-hash-iter) — output is keyed by (origin, destination); per-group stats come from slice order
fn aggregate_profiles(trips: &[TripSummary]) -> HashMap<(u32, u32), RouteProfile> {
    let mut groups: HashMap<(u32, u32), Vec<&TripSummary>> = HashMap::new();
    for t in trips {
        if let (Some(o), Some(d)) = (t.origin, t.destination) {
            if o != d {
                groups.entry((o, d)).or_default().push(t);
            }
        }
    }
    groups
        .into_iter()
        .map(|((o, d), ts)| {
            let n = ts.len() as f64;
            let durations: Vec<f64> = ts.iter().map(|t| t.duration().as_seconds() as f64).collect();
            let mean = durations.iter().sum::<f64>() / n;
            let var = durations.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            let mut hour_histogram = [0u32; 24];
            for t in &ts {
                hour_histogram[t.departure_hour() as usize] += 1;
            }
            let representative =
                ts.iter().max_by_key(|t| t.start).map(|t| t.geometry.clone()).unwrap_or_default();
            (
                (o, d),
                RouteProfile {
                    origin: o,
                    destination: d,
                    trip_count: ts.len(),
                    mean_duration_s: mean,
                    std_duration_s: var.sqrt(),
                    mean_length_m: ts.iter().map(|t| t.length_m).sum::<f64>() / n,
                    mean_complexity: ts.iter().map(|t| t.complexity).sum::<f64>() / n,
                    hour_histogram,
                    representative,
                },
            )
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::fix::GpsFix;
    use pphcr_geo::GeoPoint;

    /// Builds `days` days of a home→work (08:00) / work→home (18:00)
    /// commute with overnight home dwell and workday office dwell.
    pub fn commuter_trace(days: u64) -> (Trace, LocalProjection, GeoPoint, GeoPoint) {
        let home = GeoPoint::new(45.07, 7.68);
        let proj = LocalProjection::new(home);
        let work = home.destination(80.0, 9_000.0);
        let mut fixes = Vec::new();
        for day in 0..days {
            let d0 = TimePoint::at(day, 0, 0, 0);
            // Home 00:00–07:25, every 5 min (total home dwell per day
            // must exceed the office dwell so home ranks first).
            for i in 0..90u64 {
                fixes.push(GpsFix::new(home, d0.advance(TimeSpan::minutes(i * 5)), 0.1));
            }
            // Commute out 08:00, 20 min, fix every 30 s.
            for i in 0..40u64 {
                let frac = i as f64 / 39.0;
                fixes.push(GpsFix::new(
                    home.destination(80.0, frac * 9_000.0),
                    d0.advance(TimeSpan::hours(8)).advance(TimeSpan::seconds(i * 30)),
                    7.5,
                ));
            }
            // Work 08:30–17:55, every 10 min.
            for i in 0..57u64 {
                fixes.push(GpsFix::new(work, d0.advance(TimeSpan::minutes(510 + i * 10)), 0.2));
            }
            // Commute home 18:00.
            for i in 0..40u64 {
                let frac = i as f64 / 39.0;
                fixes.push(GpsFix::new(
                    work.destination(260.0, frac * 9_000.0),
                    d0.advance(TimeSpan::hours(18)).advance(TimeSpan::seconds(i * 30)),
                    7.5,
                ));
            }
            // Evening at home 18:25–23:55.
            for i in 0..66u64 {
                fixes.push(GpsFix::new(home, d0.advance(TimeSpan::minutes(1105 + i * 5)), 0.1));
            }
        }
        (Trace::from_fixes(fixes), proj, home, work)
    }

    #[test]
    fn model_finds_two_stays_and_two_routes() {
        let (trace, proj, home, work) = commuter_trace(5);
        let model = MobilityModel::build(&trace, &proj, &ModelConfig::default());
        assert_eq!(model.stay_points.len(), 2, "{:?}", model.stay_points);
        assert!(model.stay_points[0].center.haversine_m(home) < 150.0, "home is rank 0");
        assert!(model.stay_points[1].center.haversine_m(work) < 150.0);
        assert_eq!(model.trips.len(), 10, "two trips per day over five days");
        assert_eq!(model.profiles.len(), 2);
        let out = model.profiles.get(&(0, 1)).expect("home→work profile");
        assert_eq!(out.trip_count, 5);
        // 20-minute commute.
        assert!((out.mean_duration_s - 1_170.0).abs() < 120.0, "{}", out.mean_duration_s);
        assert_eq!(
            out.hour_histogram[8], 5,
            "all outbound departures at 08:xx: {:?}",
            out.hour_histogram
        );
    }

    #[test]
    fn routes_from_sorted_by_frequency() {
        let (trace, proj, _, _) = commuter_trace(4);
        let model = MobilityModel::build(&trace, &proj, &ModelConfig::default());
        let routes = model.routes_from(0);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].destination, 1);
    }

    #[test]
    fn hour_affinity_peaks_at_observed_hour() {
        let (trace, proj, _, _) = commuter_trace(5);
        let model = MobilityModel::build(&trace, &proj, &ModelConfig::default());
        let p = model.profiles.get(&(0, 1)).unwrap();
        assert!(p.hour_affinity(8) > p.hour_affinity(14));
        // Smoothing keeps unseen hours non-zero.
        assert!(p.hour_affinity(3) > 0.0);
    }

    #[test]
    fn compression_is_substantial() {
        let (trace, proj, _, _) = commuter_trace(5);
        let raw = trace.len();
        let model = MobilityModel::build(&trace, &proj, &ModelConfig::default());
        let ratio = model.compression_ratio(raw);
        assert!(ratio > 10.0, "straight commutes compress well, got {ratio}");
    }

    #[test]
    fn stay_near_finds_and_respects_radius() {
        let (trace, proj, home, _) = commuter_trace(3);
        let model = MobilityModel::build(&trace, &proj, &ModelConfig::default());
        let at_home = proj.project(home);
        assert!(model.stay_near(at_home, &proj, 300.0).is_some());
        let far = proj.project(home.destination(0.0, 50_000.0));
        assert!(model.stay_near(far, &proj, 300.0).is_none());
    }

    #[test]
    fn empty_trace_builds_empty_model() {
        let proj = LocalProjection::new(GeoPoint::new(45.0, 7.0));
        let model = MobilityModel::build(&Trace::new(), &proj, &ModelConfig::default());
        assert!(model.stay_points.is_empty());
        assert!(model.trips.is_empty());
        assert!(model.profiles.is_empty());
    }

    #[test]
    fn trip_summary_accessors() {
        let (trace, proj, _, _) = commuter_trace(1);
        let model = MobilityModel::build(&trace, &proj, &ModelConfig::default());
        let t = &model.trips[0];
        assert_eq!(t.departure_hour(), 8);
        assert!(t.duration().as_seconds() > 600);
        assert!(t.polyline().length_m() > 8_000.0);
        assert!(t.mean_speed_mps > 5.0);
    }

    #[test]
    fn routes_from_breaks_frequency_ties_by_destination() {
        // Regression: T3 witness `run_tick → … → routes_from` — with
        // equal trip counts the order used to fall back to hash-map
        // visit order.
        let profile = |destination: u32| RouteProfile {
            origin: 0,
            destination,
            trip_count: 3,
            mean_duration_s: 600.0,
            std_duration_s: 0.0,
            mean_length_m: 5_000.0,
            mean_complexity: 1.0,
            hour_histogram: [0; 24],
            representative: Vec::new(),
        };
        let mut profiles = HashMap::new();
        for d in [9u32, 2, 5, 7, 1] {
            profiles.insert((0u32, d), profile(d));
        }
        let model = MobilityModel { stay_points: Vec::new(), trips: Vec::new(), profiles };
        let dests: Vec<u32> = model.routes_from(0).iter().map(|p| p.destination).collect();
        assert_eq!(dests, vec![1, 2, 5, 7, 9]);
    }
}
