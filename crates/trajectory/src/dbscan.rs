//! Density-based clustering (DBSCAN) and staying-point extraction.
//!
//! The paper: *"Major staying points on the driving paths are calculated
//! using a density based location clustering \[Ester et al. 1996\]"*.
//! This module implements classic DBSCAN over projected GPS fixes,
//! accelerated by the uniform-grid index, and derives [`StayPoint`]s —
//! the recurring places (home, work, gym) that anchor the mobility
//! model — from the clusters of *low-speed* fixes.

use crate::fix::Trace;
use pphcr_geo::grid::GridIndex;
use pphcr_geo::{GeoPoint, LocalProjection, ProjectedPoint, TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};

/// Cluster assignment of one input point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterLabel {
    /// Point belongs to cluster `id` (ids are dense from 0).
    Cluster(u32),
    /// Density noise.
    Noise,
}

impl ClusterLabel {
    /// The cluster id, if any.
    #[must_use]
    pub fn id(self) -> Option<u32> {
        match self {
            ClusterLabel::Cluster(id) => Some(id),
            ClusterLabel::Noise => None,
        }
    }
}

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DbscanParams {
    /// Neighbourhood radius ε, meters.
    pub eps_m: f64,
    /// Minimum neighbourhood size (including the point itself) for a
    /// core point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        // 60 m ≈ urban GPS scatter around a parking spot; 5 fixes at the
        // app's 30 s cadence ≈ 2.5 minutes of presence.
        DbscanParams { eps_m: 60.0, min_pts: 5 }
    }
}

/// Classic DBSCAN over projected points.
///
/// Returns one label per input point. Runs in O(n · k) where k is the
/// mean ε-neighbourhood size, using a grid index with cell = ε.
///
/// # Panics
/// Panics if `params.eps_m` is not positive or `params.min_pts` is 0.
#[must_use]
pub fn dbscan(points: &[ProjectedPoint], params: DbscanParams) -> Vec<ClusterLabel> {
    assert!(params.eps_m > 0.0, "eps must be positive");
    assert!(params.min_pts >= 1, "min_pts must be at least 1");
    let n = points.len();
    let mut labels = vec![None::<ClusterLabel>; n];
    if n == 0 {
        return Vec::new();
    }
    let mut index: GridIndex<usize> = GridIndex::new(params.eps_m);
    for (i, p) in points.iter().enumerate() {
        index.insert(*p, i);
    }
    let neighbours = |i: usize, out: &mut Vec<usize>| {
        out.clear();
        index.for_each_in_radius(points[i], params.eps_m, |_, &j| out.push(j));
    };
    let mut next_cluster = 0u32;
    let mut seeds: Vec<usize> = Vec::new();
    let mut nbuf: Vec<usize> = Vec::new();
    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        neighbours(i, &mut nbuf);
        if nbuf.len() < params.min_pts {
            labels[i] = Some(ClusterLabel::Noise);
            continue;
        }
        // i is a core point: start a cluster and expand.
        let cid = next_cluster;
        next_cluster += 1;
        labels[i] = Some(ClusterLabel::Cluster(cid));
        seeds.clear();
        seeds.extend(nbuf.iter().copied());
        let mut cursor = 0;
        while cursor < seeds.len() {
            let j = seeds[cursor];
            cursor += 1;
            match labels[j] {
                Some(ClusterLabel::Noise) => {
                    // Border point reached from a core point.
                    labels[j] = Some(ClusterLabel::Cluster(cid));
                }
                Some(ClusterLabel::Cluster(_)) => {}
                None => {
                    labels[j] = Some(ClusterLabel::Cluster(cid));
                    neighbours(j, &mut nbuf);
                    if nbuf.len() >= params.min_pts {
                        seeds.extend(nbuf.iter().copied());
                    }
                }
            }
        }
    }
    // The sweep labels every point; an unlabelled survivor would be an
    // algorithmic bug, and Noise is the safe total answer for it.
    labels.into_iter().map(|l| l.unwrap_or(ClusterLabel::Noise)).collect()
}

/// A recurring significant place extracted from a listener's fixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StayPoint {
    /// Dense id (0-based, ordered by total dwell, longest first).
    pub id: u32,
    /// Centroid of the member fixes.
    pub center: GeoPoint,
    /// Number of member fixes.
    pub fix_count: usize,
    /// Total dwell time accumulated over all visits.
    pub total_dwell: TimeSpan,
    /// Number of distinct visits (gaps > 30 min split visits).
    pub visit_count: usize,
    /// Histogram of visit-start hours (24 bins) — the "time of the day"
    /// feature of the paper's compact model.
    pub hour_histogram: [u32; 24],
}

impl StayPoint {
    /// The hour of day at which visits most often start.
    #[must_use]
    pub fn peak_hour(&self) -> u64 {
        self.hour_histogram.iter().enumerate().max_by_key(|(_, &c)| c).map_or(0, |(h, _)| h as u64)
    }
}

/// Extracts staying points from a trace.
///
/// Only fixes slower than `max_speed_mps` participate (the paper's
/// staying points are where the listener is *not* driving). Clusters
/// smaller than `params.min_pts` become noise and are discarded.
/// Results are sorted by total dwell, longest first, and re-numbered.
#[must_use]
pub fn stay_points(
    trace: &Trace,
    proj: &LocalProjection,
    params: DbscanParams,
    max_speed_mps: f64,
) -> Vec<StayPoint> {
    let slow: Vec<(ProjectedPoint, TimePoint)> = trace
        .fixes()
        .iter()
        .filter(|f| f.speed_mps <= max_speed_mps)
        .map(|f| (proj.project(f.point), f.time))
        .collect();
    if slow.is_empty() {
        return Vec::new();
    }
    let pts: Vec<ProjectedPoint> = slow.iter().map(|(p, _)| *p).collect();
    let labels = dbscan(&pts, params);
    let n_clusters = labels.iter().filter_map(|l| l.id()).max().map_or(0, |m| m as usize + 1);
    let visit_gap = TimeSpan::minutes(30);

    struct Acc {
        sum_x: f64,
        sum_y: f64,
        count: usize,
        total_dwell: u64,
        visit_count: usize,
        hour_histogram: [u32; 24],
        last_time: Option<TimePoint>,
        visit_start: Option<TimePoint>,
    }
    let mut accs: Vec<Acc> = (0..n_clusters)
        .map(|_| Acc {
            sum_x: 0.0,
            sum_y: 0.0,
            count: 0,
            total_dwell: 0,
            visit_count: 0,
            hour_histogram: [0; 24],
            last_time: None,
            visit_start: None,
        })
        .collect();
    // Fixes are time-ordered (Trace invariant), so visits can be
    // accumulated in one pass.
    for ((p, t), label) in slow.iter().zip(&labels) {
        let Some(cid) = label.id() else { continue };
        let acc = &mut accs[cid as usize];
        acc.sum_x += p.x;
        acc.sum_y += p.y;
        acc.count += 1;
        match acc.last_time {
            Some(last) if t.since(last) <= visit_gap => {
                acc.total_dwell += t.since(last).as_seconds();
            }
            _ => {
                acc.visit_count += 1;
                acc.hour_histogram[t.hour_of_day() as usize] += 1;
                acc.visit_start = Some(*t);
            }
        }
        acc.last_time = Some(*t);
    }
    let mut out: Vec<StayPoint> = accs
        .into_iter()
        .filter(|a| a.count > 0)
        .map(|a| StayPoint {
            id: 0,
            center: proj
                .unproject(ProjectedPoint::new(a.sum_x / a.count as f64, a.sum_y / a.count as f64)),
            fix_count: a.count,
            total_dwell: TimeSpan::seconds(a.total_dwell),
            visit_count: a.visit_count,
            hour_histogram: a.hour_histogram,
        })
        .collect();
    out.sort_by(|a, b| b.total_dwell.cmp(&a.total_dwell).then(b.fix_count.cmp(&a.fix_count)));
    for (i, sp) in out.iter_mut().enumerate() {
        sp.id = i as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fix::GpsFix;

    fn p(x: f64, y: f64) -> ProjectedPoint {
        ProjectedPoint::new(x, y)
    }

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<ProjectedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399_963; // golden-angle spiral, deterministic
                let r = spread * (i as f64 / n as f64).sqrt();
                p(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(0.0, 0.0, 40, 30.0);
        pts.extend(blob(5_000.0, 0.0, 40, 30.0));
        let labels = dbscan(&pts, DbscanParams { eps_m: 60.0, min_pts: 5 });
        let c0 = labels[0].id().unwrap();
        let c1 = labels[40].id().unwrap();
        assert_ne!(c0, c1);
        assert!(labels[..40].iter().all(|l| l.id() == Some(c0)));
        assert!(labels[40..].iter().all(|l| l.id() == Some(c1)));
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob(0.0, 0.0, 40, 30.0);
        pts.push(p(50_000.0, 50_000.0));
        let labels = dbscan(&pts, DbscanParams::default());
        assert_eq!(labels.last(), Some(&ClusterLabel::Noise));
    }

    #[test]
    fn all_noise_when_sparse() {
        let pts: Vec<ProjectedPoint> = (0..20).map(|i| p(f64::from(i) * 10_000.0, 0.0)).collect();
        let labels = dbscan(&pts, DbscanParams::default());
        assert!(labels.iter().all(|l| *l == ClusterLabel::Noise));
    }

    #[test]
    fn empty_input() {
        assert!(dbscan(&[], DbscanParams::default()).is_empty());
    }

    #[test]
    fn min_pts_one_makes_every_point_a_cluster() {
        let pts = vec![p(0.0, 0.0), p(1_000.0, 0.0)];
        let labels = dbscan(&pts, DbscanParams { eps_m: 10.0, min_pts: 1 });
        assert_eq!(labels[0], ClusterLabel::Cluster(0));
        assert_eq!(labels[1], ClusterLabel::Cluster(1));
    }

    #[test]
    fn chain_within_eps_is_one_cluster() {
        // Points 50 m apart with eps 60: density-connected chain.
        let pts: Vec<ProjectedPoint> = (0..30).map(|i| p(f64::from(i) * 50.0, 0.0)).collect();
        let labels = dbscan(&pts, DbscanParams { eps_m: 60.0, min_pts: 3 });
        let c = labels[0].id().unwrap();
        assert!(labels.iter().all(|l| l.id() == Some(c)));
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn bad_eps_panics() {
        let _ = dbscan(&[p(0.0, 0.0)], DbscanParams { eps_m: 0.0, min_pts: 3 });
    }

    /// A synthetic week: nights at home, workdays at the office. The two
    /// staying points must be recovered with home (longer dwell) first.
    #[test]
    fn stay_points_recover_home_and_work() {
        let origin = GeoPoint::new(45.07, 7.68);
        let proj = LocalProjection::new(origin);
        let home = origin;
        let work = origin.destination(90.0, 8_000.0);
        let mut fixes = Vec::new();
        for day in 0..5u64 {
            let day0 = TimePoint::at(day, 0, 0, 0);
            // Home 00:00→09:50: sample every 10 min, stationary (~590
            // min/day dwell, clearly longer than work's ~465 min).
            for i in 0..60u64 {
                fixes.push(GpsFix::new(home, day0.advance(TimeSpan::minutes(i * 10)), 0.2));
            }
            // Commute 08:00, driving fast (ignored by stay extraction).
            for i in 0..16u64 {
                let pos = home.destination(90.0, i as f64 * 500.0);
                fixes.push(GpsFix::new(
                    pos,
                    day0.advance(TimeSpan::hours(8)).advance(TimeSpan::minutes(i)),
                    14.0,
                ));
            }
            // Work 09:00→17:00: sample every 15 min.
            for i in 0..32u64 {
                fixes.push(GpsFix::new(
                    work,
                    day0.advance(TimeSpan::hours(9)).advance(TimeSpan::minutes(i * 15)),
                    0.1,
                ));
            }
        }
        let trace = Trace::from_fixes(fixes);
        let sps = stay_points(&trace, &proj, DbscanParams::default(), 1.0);
        assert_eq!(sps.len(), 2, "expected home + work, got {sps:?}");
        // Home accumulates more dwell than work.
        assert!(sps[0].total_dwell > sps[1].total_dwell);
        assert!(sps[0].center.haversine_m(home) < 100.0);
        assert!(sps[1].center.haversine_m(work) < 100.0);
        assert_eq!(sps[0].visit_count, 5);
        assert_eq!(sps[1].visit_count, 5);
        // Work visits start at 09:00.
        assert_eq!(sps[1].peak_hour(), 9);
    }

    #[test]
    fn stay_points_empty_when_always_driving() {
        let origin = GeoPoint::new(45.07, 7.68);
        let proj = LocalProjection::new(origin);
        let fixes: Vec<GpsFix> = (0..50)
            .map(|i| {
                GpsFix::new(origin.destination(90.0, i as f64 * 400.0), TimePoint(i * 30), 13.0)
            })
            .collect();
        let sps = stay_points(&Trace::from_fixes(fixes), &proj, DbscanParams::default(), 1.0);
        assert!(sps.is_empty());
    }
}
