//! Raw GPS fixes, traces and trip segmentation.
//!
//! The client app streams `(position, time, speed)` fixes to the
//! tracking store. Before any modelling, the stream is segmented into
//! *trips*: maximal runs of movement separated by dwells (engine off,
//! parked). Dwell detection is the first, cheapest compaction step the
//! paper's periodic batch job performs.

use pphcr_geo::{GeoPoint, LocalProjection, Polyline, TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};

/// Why a GPS fix failed validation.
///
/// GPS receivers on cold start emit coordinates off the ellipsoid and
/// speeds that are NaN, infinite, or negative; the paper's pipeline
/// must tolerate and name them rather than silently crunching garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidFix {
    /// Latitude/longitude non-finite or outside WGS-84 bounds.
    BadCoordinates,
    /// Reported speed is NaN or infinite.
    NonFiniteSpeed,
    /// Reported speed is negative.
    NegativeSpeed,
}

impl std::fmt::Display for InvalidFix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InvalidFix::BadCoordinates => "coordinates non-finite or out of WGS-84 bounds",
            InvalidFix::NonFiniteSpeed => "speed is not finite",
            InvalidFix::NegativeSpeed => "speed is negative",
        })
    }
}

impl std::error::Error for InvalidFix {}

/// One GPS fix from a listener's device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsFix {
    /// Position.
    pub point: GeoPoint,
    /// Acquisition time.
    pub time: TimePoint,
    /// Instantaneous speed reported by the device, meters/second.
    pub speed_mps: f64,
}

impl GpsFix {
    /// Creates a fix. Lenient: garbage values are accepted here and
    /// named by [`GpsFix::validate`] (receivers really do emit them, so
    /// construction must not panic).
    #[must_use]
    pub fn new(point: GeoPoint, time: TimePoint, speed_mps: f64) -> Self {
        GpsFix { point, time, speed_mps }
    }

    /// Creates a fix, rejecting invalid coordinates or speed.
    ///
    /// # Errors
    /// The specific [`InvalidFix`] reason.
    pub fn try_new(point: GeoPoint, time: TimePoint, speed_mps: f64) -> Result<Self, InvalidFix> {
        let fix = GpsFix { point, time, speed_mps };
        fix.validate()?;
        Ok(fix)
    }

    /// Checks coordinates and speed, naming the first problem found.
    ///
    /// # Errors
    /// The specific [`InvalidFix`] reason.
    pub fn validate(&self) -> Result<(), InvalidFix> {
        if !self.point.is_valid() {
            return Err(InvalidFix::BadCoordinates);
        }
        if !self.speed_mps.is_finite() {
            return Err(InvalidFix::NonFiniteSpeed);
        }
        if self.speed_mps < 0.0 {
            return Err(InvalidFix::NegativeSpeed);
        }
        Ok(())
    }
}

/// A time-ordered sequence of fixes from one device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    fixes: Vec<GpsFix>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace from fixes, sorting them by time.
    #[must_use]
    pub fn from_fixes(mut fixes: Vec<GpsFix>) -> Self {
        fixes.sort_by_key(|f| f.time);
        Trace { fixes }
    }

    /// Appends a fix. Out-of-order fixes (device clock skew, late
    /// uploads) are inserted at their timestamp position.
    pub fn push(&mut self, fix: GpsFix) {
        match self.fixes.last() {
            Some(last) if last.time > fix.time => {
                let idx = self.fixes.partition_point(|f| f.time <= fix.time);
                self.fixes.insert(idx, fix);
            }
            _ => self.fixes.push(fix),
        }
    }

    /// The fixes, oldest first.
    #[must_use]
    pub fn fixes(&self) -> &[GpsFix] {
        &self.fixes
    }

    /// Number of fixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fixes.len()
    }

    /// True when the trace holds no fixes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fixes.is_empty()
    }

    /// Time covered by the trace (first to last fix).
    #[must_use]
    pub fn duration(&self) -> TimeSpan {
        match (self.fixes.first(), self.fixes.last()) {
            (Some(a), Some(b)) => b.time.since(a.time),
            _ => TimeSpan::ZERO,
        }
    }

    /// Path length in meters (sum of haversine hops).
    #[must_use]
    pub fn length_m(&self) -> f64 {
        self.fixes.windows(2).map(|w| w[0].point.haversine_m(w[1].point)).sum()
    }

    /// Mean of the reported instantaneous speeds, m/s (0 when empty).
    #[must_use]
    pub fn mean_speed_mps(&self) -> f64 {
        if self.fixes.is_empty() {
            return 0.0;
        }
        self.fixes.iter().map(|f| f.speed_mps).sum::<f64>() / self.fixes.len() as f64
    }

    /// Projects the trace into a metric polyline.
    #[must_use]
    pub fn to_polyline(&self, proj: &LocalProjection) -> Polyline {
        Polyline::new(self.fixes.iter().map(|f| proj.project(f.point)).collect())
    }

    /// Drops fixes with invalid coordinates or non-finite speed,
    /// returning how many were removed. GPS receivers emit such fixes on
    /// cold start; the paper's pipeline must tolerate them.
    pub fn sanitize(&mut self) -> usize {
        let before = self.fixes.len();
        self.fixes.retain(|f| f.validate().is_ok());
        before - self.fixes.len()
    }
}

/// Splits a trace into trips separated by dwells.
///
/// A *dwell* is a maximal run of fixes that stays within
/// `dwell_radius_m` of its first fix for at least `min_dwell`. Runs of
/// movement between dwells (and before the first / after the last) are
/// returned as trips, provided they contain at least `min_trip_fixes`
/// fixes.
#[derive(Debug, Clone, Copy)]
pub struct TripSegmenter {
    /// Radius within which the device counts as stationary.
    pub dwell_radius_m: f64,
    /// Minimum stationary time to end a trip.
    pub min_dwell: TimeSpan,
    /// Minimum fixes for a segment to count as a trip.
    pub min_trip_fixes: usize,
    /// Fixes faster than this can never belong to a dwell, even inside
    /// the dwell radius — the first driving fix after a parked night
    /// must open the trip, not extend the dwell.
    pub max_dwell_speed_mps: f64,
}

impl Default for TripSegmenter {
    fn default() -> Self {
        TripSegmenter {
            dwell_radius_m: 80.0,
            min_dwell: TimeSpan::minutes(5),
            min_trip_fixes: 4,
            max_dwell_speed_mps: 3.0,
        }
    }
}

impl TripSegmenter {
    /// Segments `trace` into trips.
    #[must_use]
    pub fn segment(&self, trace: &Trace) -> Vec<Trace> {
        let fixes = trace.fixes();
        if fixes.is_empty() {
            return Vec::new();
        }
        // Mark each fix as dwelling or moving by scanning anchored runs.
        let mut dwelling = vec![false; fixes.len()];
        let mut i = 0;
        while i < fixes.len() {
            let anchor = fixes[i];
            if anchor.speed_mps > self.max_dwell_speed_mps {
                i += 1;
                continue;
            }
            let mut j = i;
            while j + 1 < fixes.len()
                && fixes[j + 1].speed_mps <= self.max_dwell_speed_mps
                && fixes[j + 1].point.haversine_m(anchor.point) <= self.dwell_radius_m
            {
                j += 1;
            }
            if fixes[j].time.since(anchor.time) >= self.min_dwell {
                for d in dwelling.iter_mut().take(j + 1).skip(i) {
                    *d = true;
                }
            }
            i = j.max(i) + 1;
        }
        // Collect maximal moving runs as trips.
        let mut trips = Vec::new();
        let mut current: Vec<GpsFix> = Vec::new();
        for (fix, &is_dwell) in fixes.iter().zip(&dwelling) {
            if is_dwell {
                if current.len() >= self.min_trip_fixes {
                    trips.push(Trace { fixes: std::mem::take(&mut current) });
                } else {
                    current.clear();
                }
            } else {
                current.push(*fix);
            }
        }
        if current.len() >= self.min_trip_fixes {
            trips.push(Trace { fixes: current });
        }
        trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOME: GeoPoint = GeoPoint { lat: 45.07, lon: 7.68 };

    fn moving_fix(i: u64, meters_per_step: f64) -> GpsFix {
        let p = HOME.destination(90.0, i as f64 * meters_per_step);
        GpsFix::new(p, TimePoint(i * 30), meters_per_step / 30.0)
    }

    #[test]
    fn push_keeps_time_order() {
        let mut t = Trace::new();
        t.push(GpsFix::new(HOME, TimePoint(100), 0.0));
        t.push(GpsFix::new(HOME, TimePoint(50), 0.0));
        t.push(GpsFix::new(HOME, TimePoint(75), 0.0));
        let times: Vec<u64> = t.fixes().iter().map(|f| f.time.seconds()).collect();
        assert_eq!(times, vec![50, 75, 100]);
    }

    #[test]
    fn from_fixes_sorts() {
        let t = Trace::from_fixes(vec![
            GpsFix::new(HOME, TimePoint(9), 0.0),
            GpsFix::new(HOME, TimePoint(1), 0.0),
        ]);
        assert_eq!(t.fixes()[0].time, TimePoint(1));
    }

    #[test]
    fn duration_and_length() {
        let t = Trace::from_fixes((0..10).map(|i| moving_fix(i, 100.0)).collect());
        assert_eq!(t.duration(), TimeSpan::seconds(270));
        assert!((t.length_m() - 900.0).abs() < 1.0);
        assert!(t.mean_speed_mps() > 3.0);
    }

    #[test]
    fn empty_trace_metrics_are_zero() {
        let t = Trace::new();
        assert_eq!(t.duration(), TimeSpan::ZERO);
        assert_eq!(t.length_m(), 0.0);
        assert_eq!(t.mean_speed_mps(), 0.0);
    }

    #[test]
    fn sanitize_drops_garbage() {
        let mut t = Trace::from_fixes(vec![
            GpsFix::new(HOME, TimePoint(0), 1.0),
            GpsFix::new(GeoPoint::new(f64::NAN, 7.0), TimePoint(1), 1.0),
            GpsFix::new(HOME, TimePoint(2), f64::INFINITY),
            GpsFix::new(HOME, TimePoint(3), -2.0),
        ]);
        assert_eq!(t.sanitize(), 3);
        assert_eq!(t.len(), 1);
    }

    /// Drive 15 min, park 10 min, drive 15 min: two trips.
    #[test]
    fn segmenter_splits_on_dwell() {
        let mut fixes = Vec::new();
        // Trip 1: eastbound, 30 fixes at 30 s / 300 m apart.
        for i in 0..30u64 {
            fixes.push(GpsFix::new(
                HOME.destination(90.0, i as f64 * 300.0),
                TimePoint(i * 30),
                10.0,
            ));
        }
        let parked_at = HOME.destination(90.0, 29.0 * 300.0);
        // Dwell: 20 fixes over 10 minutes, all within 5 m.
        for i in 0..20u64 {
            fixes.push(GpsFix::new(parked_at, TimePoint(900 + i * 30), 0.0));
        }
        // Trip 2: northbound.
        for i in 0..30u64 {
            fixes.push(GpsFix::new(
                parked_at.destination(0.0, i as f64 * 300.0),
                TimePoint(1500 + i * 30),
                10.0,
            ));
        }
        let trips = TripSegmenter::default().segment(&Trace::from_fixes(fixes));
        assert_eq!(trips.len(), 2);
        assert!(trips[0].length_m() > 8_000.0);
        assert!(trips[1].length_m() > 8_000.0);
        // The dwell fixes belong to neither trip.
        assert!(trips.iter().all(|t| t.fixes().iter().all(|f| f.speed_mps > 0.0)));
    }

    #[test]
    fn segmenter_all_dwelling_yields_no_trips() {
        let fixes: Vec<GpsFix> =
            (0..40).map(|i| GpsFix::new(HOME, TimePoint(i * 30), 0.0)).collect();
        assert!(TripSegmenter::default().segment(&Trace::from_fixes(fixes)).is_empty());
    }

    #[test]
    fn segmenter_short_segments_are_discarded() {
        // 3 moving fixes only (below min_trip_fixes = 4).
        let fixes: Vec<GpsFix> = (0..3).map(|i| moving_fix(i, 400.0)).collect();
        assert!(TripSegmenter::default().segment(&Trace::from_fixes(fixes)).is_empty());
    }

    #[test]
    fn segmenter_empty_trace() {
        assert!(TripSegmenter::default().segment(&Trace::new()).is_empty());
    }

    #[test]
    fn single_continuous_drive_is_one_trip() {
        let fixes: Vec<GpsFix> = (0..60).map(|i| moving_fix(i, 250.0)).collect();
        let trips = TripSegmenter::default().segment(&Trace::from_fixes(fixes));
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].len(), 60);
    }
}
