//! GPS trajectory analytics for PPHCR.
//!
//! The paper (§1.2) describes the tracking pipeline this crate
//! reproduces: *"The amount of GPS data arriving to the tracking data DB
//! requires to periodically process and simplify them, extracting a
//! compact, discrete model which describes destination, trajectory,
//! speed, frequency, time of the day and complexity. Major staying
//! points on the driving paths are calculated using a density based
//! location clustering \[DBSCAN\] and complexity is calculated analysing
//! the trajectory simplified using the Ramer-Douglas-Peucker algorithm
//! (RDP)."*
//!
//! Modules:
//!
//! * [`fix`] — raw GPS fixes, traces, and dwell-based trip segmentation,
//! * [`dbscan`] — density-based clustering and staying-point extraction,
//! * [`rdp`] — Ramer–Douglas–Peucker simplification and the complexity
//!   metric,
//! * [`model`] — the compact, discrete mobility model,
//! * [`predict`] — destination and travel-time (ΔT) prediction feeding
//!   the proactive recommender (paper Fig. 2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dbscan;
pub mod fix;
pub mod model;
pub mod predict;
pub mod rdp;
pub mod smoothing;

pub use dbscan::{dbscan, stay_points, ClusterLabel, DbscanParams, StayPoint};
pub use fix::{GpsFix, InvalidFix, Trace, TripSegmenter};
pub use model::{MobilityModel, RouteProfile, TripSummary};
pub use predict::{MarkovRoutePredictor, TripPrediction, TripPredictor};
pub use rdp::{rdp_indices, simplify, trajectory_complexity};
pub use smoothing::{clean, reject_outliers, smooth};
