//! Ramer–Douglas–Peucker simplification and trajectory complexity.
//!
//! The paper computes a trajectory *complexity* feature by "analysing
//! the trajectory simplified using the Ramer-Douglas-Peucker algorithm".
//! RDP keeps the vertices whose removal would move the path by more than
//! a tolerance ε; a geometrically complex route (many real turns)
//! retains many vertices, a straight commute almost none. Complexity
//! feeds the recommender's context score — at high complexity (dense
//! urban driving) short, light content wins over long talk programmes.

use pphcr_geo::ProjectedPoint;

/// Indices of the vertices RDP keeps for tolerance `epsilon_m` (meters).
///
/// Always includes the first and last index of a non-empty input. The
/// returned indices are strictly increasing. Runs iteratively with an
/// explicit stack so adversarial zig-zags cannot overflow the call
/// stack.
#[must_use]
pub fn rdp_indices(points: &[ProjectedPoint], epsilon_m: f64) -> Vec<usize> {
    match points.len() {
        0 => return Vec::new(),
        1 => return vec![0],
        2 => return vec![0, 1],
        _ => {}
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    let mut stack = vec![(0usize, points.len() - 1)];
    while let Some((first, last)) = stack.pop() {
        if last <= first + 1 {
            continue;
        }
        let (a, b) = (points[first], points[last]);
        let mut max_d = -1.0;
        let mut max_i = first;
        for (i, p) in points.iter().enumerate().take(last).skip(first + 1) {
            let d = p.distance_to_segment_m(a, b);
            if d > max_d {
                max_d = d;
                max_i = i;
            }
        }
        if max_d > epsilon_m {
            keep[max_i] = true;
            stack.push((first, max_i));
            stack.push((max_i, last));
        }
    }
    keep.iter().enumerate().filter_map(|(i, &k)| k.then_some(i)).collect()
}

/// The simplified polyline: the kept vertices for tolerance `epsilon_m`.
#[must_use]
pub fn simplify(points: &[ProjectedPoint], epsilon_m: f64) -> Vec<ProjectedPoint> {
    rdp_indices(points, epsilon_m).into_iter().map(|i| points[i]).collect()
}

/// Trajectory complexity: direction changes per kilometre of the
/// RDP-simplified path.
///
/// The simplification first removes GPS jitter (tolerance `epsilon_m`),
/// then the total absolute turning angle (radians) of what remains is
/// divided by the path length in km. A straight highway commute scores
/// ≈ 0; a dense city centre route scores high. Returns 0 for paths
/// shorter than 2 segments or 100 m.
#[must_use]
pub fn trajectory_complexity(points: &[ProjectedPoint], epsilon_m: f64) -> f64 {
    let simplified = simplify(points, epsilon_m);
    if simplified.len() < 3 {
        return 0.0;
    }
    let length_m: f64 = simplified.windows(2).map(|w| w[0].distance_m(w[1])).sum();
    if length_m < 100.0 {
        return 0.0;
    }
    let mut total_turn = 0.0;
    for w in simplified.windows(3) {
        let (a, b, c) = (w[0], w[1], w[2]);
        let h1 = (b.y - a.y).atan2(b.x - a.x);
        let h2 = (c.y - b.y).atan2(c.x - b.x);
        let mut d = (h2 - h1).abs();
        if d > std::f64::consts::PI {
            d = 2.0 * std::f64::consts::PI - d;
        }
        total_turn += d;
    }
    total_turn / (length_m / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> ProjectedPoint {
        ProjectedPoint::new(x, y)
    }

    #[test]
    fn trivial_inputs() {
        assert!(rdp_indices(&[], 1.0).is_empty());
        assert_eq!(rdp_indices(&[p(0.0, 0.0)], 1.0), vec![0]);
        assert_eq!(rdp_indices(&[p(0.0, 0.0), p(1.0, 1.0)], 1.0), vec![0, 1]);
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let pts: Vec<ProjectedPoint> = (0..100).map(|i| p(f64::from(i) * 10.0, 0.0)).collect();
        assert_eq!(rdp_indices(&pts, 0.5), vec![0, 99]);
    }

    #[test]
    fn jitter_below_epsilon_is_removed() {
        let pts: Vec<ProjectedPoint> =
            (0..50).map(|i| p(f64::from(i) * 10.0, if i % 2 == 0 { 0.4 } else { -0.4 })).collect();
        let kept = rdp_indices(&pts, 1.0);
        assert_eq!(kept, vec![0, 49]);
    }

    #[test]
    fn real_corner_is_kept() {
        // L-shape: corner at index 10 deviates ~707 m from the chord.
        let mut pts: Vec<ProjectedPoint> = (0..=10).map(|i| p(f64::from(i) * 100.0, 0.0)).collect();
        pts.extend((1..=10).map(|i| p(1_000.0, f64::from(i) * 100.0)));
        let kept = rdp_indices(&pts, 5.0);
        assert!(kept.contains(&10), "corner vertex must survive: {kept:?}");
        assert_eq!(kept.first(), Some(&0));
        assert_eq!(kept.last(), Some(&(pts.len() - 1)));
    }

    #[test]
    fn epsilon_zero_keeps_every_non_collinear_point() {
        let pts = vec![p(0.0, 0.0), p(10.0, 3.0), p(20.0, -2.0), p(30.0, 0.0)];
        assert_eq!(rdp_indices(&pts, 0.0).len(), 4);
    }

    /// The defining RDP guarantee: every dropped point lies within ε of
    /// the simplified polyline.
    #[test]
    fn error_bound_holds() {
        // A noisy sine-like path.
        let pts: Vec<ProjectedPoint> = (0..200)
            .map(|i| {
                let x = f64::from(i) * 25.0;
                p(x, 300.0 * (x / 800.0).sin() + f64::from((i * 7919) % 13))
            })
            .collect();
        let eps = 20.0;
        let kept = simplify(&pts, eps);
        let pl = pphcr_geo::Polyline::new(kept);
        for q in &pts {
            let d = pl.distance_to(*q).unwrap();
            assert!(d <= eps + 1e-9, "dropped point {q:?} is {d} m from the simplified path");
        }
    }

    #[test]
    fn indices_strictly_increasing() {
        let pts: Vec<ProjectedPoint> =
            (0..60).map(|i| p(f64::from(i) * 30.0, f64::from((i * 31) % 17) * 12.0)).collect();
        let kept = rdp_indices(&pts, 10.0);
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn complexity_straight_is_zero() {
        let pts: Vec<ProjectedPoint> = (0..100).map(|i| p(f64::from(i) * 50.0, 0.0)).collect();
        assert_eq!(trajectory_complexity(&pts, 5.0), 0.0);
    }

    #[test]
    fn complexity_orders_routes_correctly() {
        // Zig-zag city route: 90° turn every 200 m.
        let mut zig = vec![p(0.0, 0.0)];
        for i in 0..20 {
            let last = *zig.last().unwrap();
            if i % 2 == 0 {
                zig.push(ProjectedPoint::new(last.x + 200.0, last.y));
            } else {
                zig.push(ProjectedPoint::new(last.x, last.y + 200.0));
            }
        }
        // Gentle highway curve.
        let gentle: Vec<ProjectedPoint> =
            (0..21).map(|i| p(f64::from(i) * 200.0, (f64::from(i) * 0.05).sin() * 100.0)).collect();
        let c_zig = trajectory_complexity(&zig, 5.0);
        let c_gentle = trajectory_complexity(&gentle, 5.0);
        assert!(c_zig > c_gentle, "zig-zag {c_zig} should exceed gentle {c_gentle}");
        assert!(c_zig > 1.0);
    }

    #[test]
    fn complexity_short_path_is_zero() {
        assert_eq!(trajectory_complexity(&[p(0.0, 0.0), p(10.0, 0.0)], 1.0), 0.0);
        // Long enough in points but under 100 m total.
        let tiny: Vec<ProjectedPoint> =
            (0..10).map(|i| p(f64::from(i), f64::from(i % 2))).collect();
        assert_eq!(trajectory_complexity(&tiny, 0.1), 0.0);
    }
}
