//! Destination, route and travel-time (ΔT) prediction.
//!
//! Paper Fig. 2: *"When the user's car starts moving, the system
//! predicts a travel duration ΔT, and tries to allocate the most
//! relevant content for the available time ΔT."* Two predictors feed
//! that step:
//!
//! * [`TripPredictor`] — matches an in-progress trip against the
//!   listener's [`MobilityModel`]: a Bayesian posterior over known
//!   destinations combining route frequency (prior), departure-hour
//!   affinity and geometric agreement of the driven prefix. Yields the
//!   destination, remaining ΔT and the projected route geometry.
//! * [`MarkovRoutePredictor`] — an order-2 Markov model over grid cells
//!   for short-horizon movement when no profile matches (cold start or
//!   a novel route).

use crate::model::{MobilityModel, RouteProfile};
use pphcr_geo::{Polyline, ProjectedPoint, TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Prediction for an in-progress trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripPrediction {
    /// Predicted destination staying point.
    pub destination: u32,
    /// Posterior probability of that destination among known routes.
    pub confidence: f64,
    /// Predicted total trip duration from departure.
    pub total_duration: TimeSpan,
    /// Predicted time still to drive from `now` (the recommender's ΔT).
    pub remaining: TimeSpan,
    /// Expected remaining route geometry (from the current position to
    /// the destination), in the projected frame.
    pub route_ahead: Vec<ProjectedPoint>,
    /// Mean complexity of the predicted route.
    pub complexity: f64,
    /// Full posterior over destinations, highest first.
    pub posterior: Vec<(u32, f64)>,
}

/// Predicts destination and ΔT by matching trip prefixes to route
/// profiles.
#[derive(Debug, Clone)]
pub struct TripPredictor {
    /// Weight of the departure-hour affinity in the match score.
    pub hour_weight: f64,
    /// Scale (meters) of the geometric prefix-agreement kernel: the mean
    /// distance between the driven prefix and a candidate route is
    /// passed through `exp(-d/scale)`.
    pub geometry_scale_m: f64,
    /// Minimum posterior mass required to commit to a destination.
    pub min_confidence: f64,
}

impl Default for TripPredictor {
    fn default() -> Self {
        TripPredictor { hour_weight: 1.0, geometry_scale_m: 400.0, min_confidence: 0.35 }
    }
}

impl TripPredictor {
    /// Predicts the destination and remaining travel time.
    ///
    /// * `model` — the listener's compacted history,
    /// * `origin` — staying point the trip departed from,
    /// * `departure` — when the car started moving,
    /// * `now` — current time,
    /// * `prefix` — positions driven so far (projected frame, oldest
    ///   first).
    ///
    /// Returns `None` when the model has no route leaving `origin` or no
    /// candidate reaches `min_confidence`.
    #[must_use]
    pub fn predict(
        &self,
        model: &MobilityModel,
        origin: u32,
        departure: TimePoint,
        now: TimePoint,
        prefix: &[ProjectedPoint],
    ) -> Option<TripPrediction> {
        let candidates = model.routes_from(origin);
        if candidates.is_empty() {
            return None;
        }
        let hour = departure.hour_of_day();
        let mut scored: Vec<(&RouteProfile, f64)> = candidates
            .iter()
            .map(|p| {
                let prior = p.trip_count as f64;
                let hour_aff = p.hour_affinity(hour).powf(self.hour_weight);
                let geo = self.geometry_agreement(prefix, p);
                (*p, prior * hour_aff * geo)
            })
            .collect();
        let total: f64 = scored.iter().map(|(_, s)| s).sum();
        if total <= 0.0 {
            return None;
        }
        for (_, s) in &mut scored {
            *s /= total;
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let (best, confidence) = (scored[0].0, scored[0].1);
        if confidence < self.min_confidence {
            return None;
        }
        let total_duration = best.mean_duration();
        let elapsed = now.since(departure);
        let remaining = total_duration.minus(elapsed);
        let route_ahead = self.route_ahead(prefix, best);
        Some(TripPrediction {
            destination: best.destination,
            confidence,
            total_duration,
            remaining,
            route_ahead,
            complexity: best.mean_complexity,
            posterior: scored.iter().map(|(p, s)| (p.destination, *s)).collect(),
        })
    }

    /// Mean-distance kernel between the driven prefix and a candidate
    /// route's representative geometry. 1.0 when the prefix is empty
    /// (pure prior) or lies exactly on the route.
    fn geometry_agreement(&self, prefix: &[ProjectedPoint], profile: &RouteProfile) -> f64 {
        if prefix.is_empty() || profile.representative.len() < 2 {
            return 1.0;
        }
        let pl = Polyline::new(profile.representative.clone());
        let mean_d =
            prefix.iter().map(|p| pl.distance_to(*p).unwrap_or(f64::INFINITY)).sum::<f64>()
                / prefix.len() as f64;
        (-mean_d / self.geometry_scale_m).exp()
    }

    /// The part of the representative route still ahead of the driver:
    /// from the projection of the last prefix point onwards.
    fn route_ahead(
        &self,
        prefix: &[ProjectedPoint],
        profile: &RouteProfile,
    ) -> Vec<ProjectedPoint> {
        let rep = &profile.representative;
        if rep.len() < 2 {
            return rep.clone();
        }
        let Some(cur) = prefix.last() else { return rep.clone() };
        let pl = Polyline::new(rep.clone());
        let along = pl.project_point(*cur).map_or(0.0, |pr| pr.along_m);
        let mut out = Vec::new();
        if let Some(start) = pl.point_at(along) {
            out.push(start);
        }
        // Keep the vertices strictly after `along`.
        let mut cum = 0.0;
        for w in rep.windows(2) {
            cum += w[0].distance_m(w[1]);
            if cum > along {
                out.push(w[1]);
            }
        }
        out
    }
}

/// A grid cell coordinate.
pub type Cell = (i32, i32);

/// Order-2 Markov model over uniform grid cells.
///
/// Trained on projected position sequences; predicts the next cell from
/// the last two. Used for short-horizon look-ahead on novel routes where
/// no [`RouteProfile`] matches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkovRoutePredictor {
    cell_m: f64,
    /// (prev, cur) → next → count.
    transitions: HashMap<(Cell, Cell), HashMap<Cell, u32>>,
    observations: u64,
}

impl MarkovRoutePredictor {
    /// Creates a predictor with square cells of side `cell_m` meters.
    ///
    /// # Panics
    /// Panics if `cell_m` is not strictly positive.
    #[must_use]
    pub fn new(cell_m: f64) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive");
        MarkovRoutePredictor { cell_m, transitions: HashMap::new(), observations: 0 }
    }

    /// The configured cell side, meters.
    #[must_use]
    pub fn cell_size_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of observed transitions.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Maps a position to its cell.
    #[must_use]
    pub fn cell_of(&self, p: ProjectedPoint) -> (i32, i32) {
        ((p.x / self.cell_m).floor() as i32, (p.y / self.cell_m).floor() as i32)
    }

    /// Trains on one trip's positions (oldest first). Consecutive
    /// duplicate cells are collapsed so dwell does not dominate.
    pub fn train(&mut self, path: &[ProjectedPoint]) {
        let cells = self.dedup_cells(path);
        for w in cells.windows(3) {
            *self.transitions.entry((w[0], w[1])).or_default().entry(w[2]).or_insert(0) += 1;
            self.observations += 1;
        }
    }

    /// Distribution over next cells given the last two positions, or an
    /// empty vector for unseen contexts. Sorted by descending
    /// probability.
    #[must_use]
    pub fn next_cell_distribution(
        &self,
        prev: ProjectedPoint,
        cur: ProjectedPoint,
    ) -> Vec<((i32, i32), f64)> {
        let key = (self.cell_of(prev), self.cell_of(cur));
        let Some(counts) = self.transitions.get(&key) else { return Vec::new() };
        let total: u32 = counts.values().sum();
        let mut out: Vec<((i32, i32), f64)> =
            counts.iter().map(|(c, &n)| (*c, f64::from(n) / f64::from(total))).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Greedy most-likely continuation of `steps` cells, as cell-centre
    /// positions. Stops early at unseen contexts.
    #[must_use]
    pub fn predict_path(
        &self,
        prev: ProjectedPoint,
        cur: ProjectedPoint,
        steps: usize,
    ) -> Vec<ProjectedPoint> {
        let mut out = Vec::with_capacity(steps);
        let mut a = self.cell_of(prev);
        let mut b = self.cell_of(cur);
        for _ in 0..steps {
            let Some(counts) = self.transitions.get(&(a, b)) else { break };
            let Some((&next, _)) =
                counts.iter().max_by(|(c1, n1), (c2, n2)| n1.cmp(n2).then_with(|| c2.cmp(c1)))
            else {
                break;
            };
            out.push(self.cell_center(next));
            a = b;
            b = next;
        }
        out
    }

    fn cell_center(&self, c: (i32, i32)) -> ProjectedPoint {
        ProjectedPoint::new(
            (f64::from(c.0) + 0.5) * self.cell_m,
            (f64::from(c.1) + 0.5) * self.cell_m,
        )
    }

    fn dedup_cells(&self, path: &[ProjectedPoint]) -> Vec<(i32, i32)> {
        let mut cells: Vec<(i32, i32)> = Vec::with_capacity(path.len());
        for p in path {
            let c = self.cell_of(*p);
            if cells.last() != Some(&c) {
                cells.push(c);
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MobilityModel, ModelConfig};
    use pphcr_geo::{GeoPoint, LocalProjection};

    fn commuter_model() -> (MobilityModel, LocalProjection) {
        let (trace, proj, _, _) = crate::model::tests::commuter_trace(7);
        (MobilityModel::build(&trace, &proj, &ModelConfig::default()), proj)
    }

    #[test]
    fn morning_departure_predicts_work() {
        let (model, _) = commuter_model();
        let predictor = TripPredictor::default();
        // Day 8, 08:01, just left home (stay 0), no prefix yet.
        let dep = TimePoint::at(8, 8, 0, 0);
        let pred = predictor
            .predict(&model, 0, dep, dep.advance(TimeSpan::minutes(1)), &[])
            .expect("commute is well known");
        assert_eq!(pred.destination, 1, "work");
        assert!(pred.confidence > 0.5, "{}", pred.confidence);
        // ~20 min commute minus 1 min elapsed.
        let rem = pred.remaining.as_seconds();
        assert!((900..=1_300).contains(&rem), "remaining {rem}s");
    }

    #[test]
    fn remaining_shrinks_with_elapsed_time() {
        let (model, _) = commuter_model();
        let predictor = TripPredictor::default();
        let dep = TimePoint::at(8, 8, 0, 0);
        let early = predictor.predict(&model, 0, dep, dep.advance(TimeSpan::minutes(2)), &[]);
        let late = predictor.predict(&model, 0, dep, dep.advance(TimeSpan::minutes(10)), &[]);
        let (early, late) = (early.unwrap(), late.unwrap());
        assert!(late.remaining < early.remaining);
        assert_eq!(late.total_duration, early.total_duration);
    }

    #[test]
    fn unknown_origin_yields_none() {
        let (model, _) = commuter_model();
        let predictor = TripPredictor::default();
        let dep = TimePoint::at(8, 8, 0, 0);
        assert!(predictor.predict(&model, 99, dep, dep, &[]).is_none());
    }

    #[test]
    fn prefix_on_route_raises_confidence() {
        let (model, _) = commuter_model();
        let predictor = TripPredictor::default();
        let dep = TimePoint::at(8, 8, 0, 0);
        let profile = model.profiles.get(&(0, 1)).unwrap();
        let on_route: Vec<ProjectedPoint> =
            profile.representative.iter().take(3).copied().collect();
        let with_prefix =
            predictor.predict(&model, 0, dep, dep.advance(TimeSpan::minutes(3)), &on_route);
        assert!(with_prefix.is_some());
        assert!(with_prefix.unwrap().confidence > 0.5);
    }

    #[test]
    fn route_ahead_starts_near_current_position() {
        let (model, _) = commuter_model();
        let predictor = TripPredictor::default();
        let dep = TimePoint::at(8, 8, 0, 0);
        let profile = model.profiles.get(&(0, 1)).unwrap();
        let rep = Polyline::new(profile.representative.clone());
        let midway = rep.point_at(rep.length_m() / 2.0).unwrap();
        let pred = predictor
            .predict(&model, 0, dep, dep.advance(TimeSpan::minutes(10)), &[midway])
            .unwrap();
        let first = pred.route_ahead.first().copied().unwrap();
        assert!(first.distance_m(midway) < 100.0);
        // Remaining geometry should be roughly half the route.
        let ahead_len = Polyline::new(pred.route_ahead.clone()).length_m();
        assert!(ahead_len < rep.length_m() * 0.75, "{ahead_len} vs {}", rep.length_m());
    }

    #[test]
    fn posterior_sums_to_one() {
        let (model, _) = commuter_model();
        let predictor = TripPredictor { min_confidence: 0.0, ..Default::default() };
        let dep = TimePoint::at(8, 18, 0, 0);
        let pred = predictor.predict(&model, 1, dep, dep, &[]).unwrap();
        let sum: f64 = pred.posterior.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    // --- Markov predictor ---

    fn l_path() -> Vec<ProjectedPoint> {
        // East 10 cells then north 10 cells, cell = 100 m.
        let mut path = Vec::new();
        for i in 0..=10 {
            path.push(ProjectedPoint::new(f64::from(i) * 100.0 + 50.0, 50.0));
        }
        for j in 1..=10 {
            path.push(ProjectedPoint::new(1_050.0, f64::from(j) * 100.0 + 50.0));
        }
        path
    }

    #[test]
    fn markov_learns_the_turn() {
        let mut m = MarkovRoutePredictor::new(100.0);
        for _ in 0..5 {
            m.train(&l_path());
        }
        // Approaching the corner heading east: next cell must be north of
        // the corner once past it.
        let dist = m.next_cell_distribution(
            ProjectedPoint::new(950.0, 50.0),
            ProjectedPoint::new(1_050.0, 50.0),
        );
        assert_eq!(dist.len(), 1);
        assert_eq!(dist[0].0, (10, 1), "turns north at the corner");
        assert!((dist[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn markov_unseen_context_is_empty() {
        let m = MarkovRoutePredictor::new(100.0);
        assert!(m
            .next_cell_distribution(ProjectedPoint::new(0.0, 0.0), ProjectedPoint::new(100.0, 0.0))
            .is_empty());
    }

    #[test]
    fn markov_predict_path_follows_training() {
        let mut m = MarkovRoutePredictor::new(100.0);
        m.train(&l_path());
        let path =
            m.predict_path(ProjectedPoint::new(150.0, 50.0), ProjectedPoint::new(250.0, 50.0), 5);
        assert_eq!(path.len(), 5);
        // All predicted cells continue east along y-cell 0.
        for (i, p) in path.iter().enumerate() {
            assert!((p.y - 50.0).abs() < 1e-9);
            assert!((p.x - (350.0 + i as f64 * 100.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn markov_mixed_routes_split_probability() {
        let mut m = MarkovRoutePredictor::new(100.0);
        // From the same two-cell context, 3 trips go east, 1 goes north.
        let ctx = [ProjectedPoint::new(50.0, 50.0), ProjectedPoint::new(150.0, 50.0)];
        let east = [ctx[0], ctx[1], ProjectedPoint::new(250.0, 50.0)];
        let north = [ctx[0], ctx[1], ProjectedPoint::new(150.0, 150.0)];
        for _ in 0..3 {
            m.train(&east);
        }
        m.train(&north);
        let dist = m.next_cell_distribution(ctx[0], ctx[1]);
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[0].0, (2, 0));
        assert!((dist[0].1 - 0.75).abs() < 1e-12);
        assert!((dist[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn markov_dwell_does_not_inflate_counts() {
        let mut m = MarkovRoutePredictor::new(100.0);
        // Many samples inside the same cells must collapse.
        let mut path = Vec::new();
        for _ in 0..50 {
            path.push(ProjectedPoint::new(50.0, 50.0));
        }
        for _ in 0..50 {
            path.push(ProjectedPoint::new(150.0, 50.0));
        }
        for _ in 0..50 {
            path.push(ProjectedPoint::new(250.0, 50.0));
        }
        m.train(&path);
        assert_eq!(m.observations(), 1, "one deduped transition triple");
    }

    #[test]
    fn cold_start_no_profiles_predicts_none_but_markov_works() {
        let proj = LocalProjection::new(GeoPoint::new(45.0, 7.0));
        let empty = MobilityModel::default();
        let predictor = TripPredictor::default();
        assert!(predictor.predict(&empty, 0, TimePoint(0), TimePoint(0), &[]).is_none());
        let _ = proj; // projection unused in cold start, kept for symmetry
    }
}
