//! GPS smoothing and outlier rejection.
//!
//! Urban GPS produces two artefacts the compaction pipeline must not
//! ingest raw: scatter (multipath jitter of a few meters) and *jumps*
//! (a reflection locks the receiver onto a position hundreds of meters
//! away for a fix or two). [`reject_outliers`] drops fixes that imply
//! physically impossible speeds; [`smooth`] then applies an
//! exponentially weighted moving average in the projected frame. Both
//! run before trip segmentation in a production pipeline (this crate's
//! [`crate::model::MobilityModel`] tolerates raw traces, but the
//! simplified geometry is visibly cleaner after smoothing).

use crate::fix::{GpsFix, Trace};
use pphcr_geo::LocalProjection;

/// Drops fixes whose implied speed from the previous *kept* fix exceeds
/// `max_speed_mps` (physically impossible motion — a GPS jump).
/// The first fix is always kept. Returns the cleaned trace and the
/// number of rejected fixes.
#[must_use]
pub fn reject_outliers(trace: &Trace, max_speed_mps: f64) -> (Trace, usize) {
    let fixes = trace.fixes();
    let mut kept: Vec<GpsFix> = Vec::with_capacity(fixes.len());
    let mut rejected = 0;
    for fix in fixes {
        match kept.last() {
            None => kept.push(*fix),
            Some(prev) => {
                let dt = fix.time.since(prev.time).as_seconds();
                let dist = prev.point.haversine_m(fix.point);
                // Same-second duplicates can't be speed-checked; keep them.
                let implied = if dt == 0 { 0.0 } else { dist / dt as f64 };
                if implied <= max_speed_mps {
                    kept.push(*fix);
                } else {
                    rejected += 1;
                }
            }
        }
    }
    (Trace::from_fixes(kept), rejected)
}

/// Exponentially weighted moving average over positions in the
/// projected frame. `alpha` ∈ (0, 1]: 1 = no smoothing, small values =
/// heavy smoothing. Timestamps and speeds are preserved.
///
/// # Panics
/// Panics when `alpha` is outside `(0, 1]`.
#[must_use]
pub fn smooth(trace: &Trace, proj: &LocalProjection, alpha: f64) -> Trace {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let fixes = trace.fixes();
    let mut out: Vec<GpsFix> = Vec::with_capacity(fixes.len());
    let mut state: Option<pphcr_geo::ProjectedPoint> = None;
    for fix in fixes {
        let p = proj.project(fix.point);
        let s = match state {
            None => p,
            Some(prev) => pphcr_geo::ProjectedPoint::new(
                prev.x + alpha * (p.x - prev.x),
                prev.y + alpha * (p.y - prev.y),
            ),
        };
        state = Some(s);
        out.push(GpsFix::new(proj.unproject(s), fix.time, fix.speed_mps));
    }
    Trace::from_fixes(out)
}

/// The standard cleaning pipeline: outlier rejection then smoothing.
#[must_use]
pub fn clean(trace: &Trace, proj: &LocalProjection) -> Trace {
    let (no_jumps, _) = reject_outliers(trace, 70.0); // > 250 km/h is a jump
    smooth(&no_jumps, proj, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_geo::{GeoPoint, TimePoint};

    const ORIGIN: GeoPoint = GeoPoint { lat: 45.07, lon: 7.69 };

    fn drive_with_jump() -> Trace {
        let mut fixes: Vec<GpsFix> = (0..20)
            .map(|i| {
                GpsFix::new(ORIGIN.destination(90.0, i as f64 * 300.0), TimePoint(i * 30), 10.0)
            })
            .collect();
        // A multipath jump: fix 10 teleports 5 km north for one sample.
        fixes[10].point = ORIGIN.destination(0.0, 5_000.0);
        Trace::from_fixes(fixes)
    }

    #[test]
    fn outlier_jump_is_rejected() {
        let (cleaned, rejected) = reject_outliers(&drive_with_jump(), 70.0);
        assert_eq!(rejected, 1);
        assert_eq!(cleaned.len(), 19);
        // Remaining fixes form a plausible path: max hop speed ≤ 70 m/s.
        for w in cleaned.fixes().windows(2) {
            let dt = w[1].time.since(w[0].time).as_seconds().max(1);
            let v = w[0].point.haversine_m(w[1].point) / dt as f64;
            assert!(v <= 70.0, "hop at {v} m/s survived");
        }
    }

    #[test]
    fn clean_path_is_untouched_by_rejection() {
        let fixes: Vec<GpsFix> = (0..30)
            .map(|i| {
                GpsFix::new(ORIGIN.destination(90.0, i as f64 * 200.0), TimePoint(i * 30), 7.0)
            })
            .collect();
        let trace = Trace::from_fixes(fixes);
        let (cleaned, rejected) = reject_outliers(&trace, 70.0);
        assert_eq!(rejected, 0);
        assert_eq!(cleaned.len(), 30);
    }

    #[test]
    fn smoothing_reduces_jitter() {
        let proj = LocalProjection::new(ORIGIN);
        // A straight east drive with ±20 m alternating north-south jitter.
        let fixes: Vec<GpsFix> = (0..40)
            .map(|i| {
                let base = ORIGIN.destination(90.0, i as f64 * 250.0);
                let jittered = base.destination(if i % 2 == 0 { 0.0 } else { 180.0 }, 20.0);
                GpsFix::new(jittered, TimePoint(i * 30), 8.0)
            })
            .collect();
        let trace = Trace::from_fixes(fixes);
        let smoothed = smooth(&trace, &proj, 0.3);
        let wobble = |t: &Trace| -> f64 {
            t.fixes().iter().map(|f| proj.project(f.point).y.abs()).sum::<f64>() / t.len() as f64
        };
        assert!(
            wobble(&smoothed) < wobble(&trace) * 0.6,
            "{} vs {}",
            wobble(&smoothed),
            wobble(&trace)
        );
        // Length, times, speeds preserved.
        assert_eq!(smoothed.len(), trace.len());
        assert_eq!(smoothed.fixes()[5].time, trace.fixes()[5].time);
        assert_eq!(smoothed.fixes()[5].speed_mps, trace.fixes()[5].speed_mps);
    }

    #[test]
    fn alpha_one_is_identity() {
        let proj = LocalProjection::new(ORIGIN);
        let trace = drive_with_jump();
        let same = smooth(&trace, &proj, 1.0);
        for (a, b) in trace.fixes().iter().zip(same.fixes()) {
            assert!(a.point.haversine_m(b.point) < 1e-6);
        }
    }

    #[test]
    fn clean_pipeline_combines_both() {
        let proj = LocalProjection::new(ORIGIN);
        let cleaned = clean(&drive_with_jump(), &proj);
        assert_eq!(cleaned.len(), 19, "jump dropped");
        // The cleaned path is still ~5.7 km long (19 fixes × 300 m).
        assert!(cleaned.length_m() > 4_500.0);
    }

    #[test]
    fn empty_trace_passes_through() {
        let proj = LocalProjection::new(ORIGIN);
        let empty = Trace::new();
        assert_eq!(reject_outliers(&empty, 70.0).1, 0);
        assert!(smooth(&empty, &proj, 0.5).is_empty());
        assert!(clean(&empty, &proj).is_empty());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn bad_alpha_panics() {
        let proj = LocalProjection::new(ORIGIN);
        let _ = smooth(&Trace::new(), &proj, 0.0);
    }
}
