//! Property-based tests for the recommender's scoring and scheduling
//! invariants.

use pphcr_audio::ClipId;
use pphcr_catalog::{CategoryId, ClipKind, ClipMetadata, ContentRepository, GeoTag};
use pphcr_geo::{GeoPoint, LocalProjection, ProjectedPoint, TimePoint, TimeSpan};
use pphcr_recommender::{
    category_entropy, diversify, sanitize_score, Ambient, CandidateFilter, DriveContext,
    ListenerContext, SchedulerConfig, ScoredClip, ScoringWeights,
};
use pphcr_trajectory::TripPrediction;
use pphcr_userdata::{FeedbackEvent, FeedbackKind, FeedbackStore, UserId};
use proptest::prelude::*;
use std::collections::HashSet;

fn meta(id: u64, cat: u16, minutes: u64, confidence: f64) -> ClipMetadata {
    ClipMetadata {
        id: ClipId(id),
        title: format!("clip {id}"),
        kind: ClipKind::Podcast,
        category: CategoryId::new(cat),
        category_confidence: confidence,
        duration: TimeSpan::minutes(minutes),
        published: TimePoint::at(0, 6, 0, 0),
        geo: None,
        transcript: Vec::new(),
    }
}

fn scored(id: u64, seconds: u64, score: f64) -> ScoredClip {
    ScoredClip {
        clip: ClipId(id),
        duration: TimeSpan::seconds(seconds),
        score,
        content_score: score,
        context_score: score,
        geo_distance_m: None,
        along_route_m: None,
    }
}

fn drive(minutes: u64) -> DriveContext {
    DriveContext::new(
        TripPrediction {
            destination: 1,
            confidence: 0.9,
            total_duration: TimeSpan::minutes(minutes + 2),
            remaining: TimeSpan::minutes(minutes),
            route_ahead: vec![
                ProjectedPoint::new(0.0, 0.0),
                ProjectedPoint::new(minutes as f64 * 600.0, 0.0),
            ],
            complexity: 1.0,
            posterior: vec![(1, 0.9)],
        },
        vec![],
    )
}

proptest! {
    /// The compound score is always in [0, 1] for any preferences,
    /// weights mix, classifier confidence and geo distance.
    #[test]
    fn compound_always_bounded(
        wc in 0.0f64..1.0,
        cat in 0u16..30,
        conf in 0.0f64..1.0,
        minutes in 1u64..45,
        geo_d in proptest::option::of(0.0f64..50_000.0),
        likes in 0u32..6,
        dislikes in 0u32..6,
    ) {
        let weights = ScoringWeights { content_weight: wc, ..Default::default() };
        let mut fb = FeedbackStore::default();
        let t = TimePoint::at(0, 8, 0, 0);
        for _ in 0..likes {
            fb.record(FeedbackEvent { user: UserId(1), clip: None, category: CategoryId::new(cat), kind: FeedbackKind::Like, time: t });
        }
        for _ in 0..dislikes {
            fb.record(FeedbackEvent { user: UserId(1), clip: None, category: CategoryId::new(cat), kind: FeedbackKind::Dislike, time: t });
        }
        let prefs = fb.preferences(UserId(1), t);
        let m = meta(1, cat, minutes, conf);
        let ctx = ListenerContext::stationary(t);
        let s = weights.compound(&prefs, &m, &ctx, geo_d);
        prop_assert!((0.0..=1.0).contains(&s), "score {}", s);
    }

    /// Packing invariants for arbitrary candidate sets: no overlap,
    /// within budget, at most max_items, total score equals the sum of
    /// the items' scores.
    #[test]
    fn pack_invariants(
        specs in prop::collection::vec((30u64..1_200, 0.01f64..1.0), 0..20),
        trip_min in 5u64..45,
        max_items in 1usize..8,
    ) {
        let clips: Vec<ScoredClip> = specs
            .iter()
            .enumerate()
            .map(|(i, (d, s))| scored(i as u64, *d, *s))
            .collect();
        let cfg = SchedulerConfig { max_items, ..Default::default() };
        let d = drive(trip_min);
        let schedule = cfg.pack(&clips, &d, TimePoint::at(0, 8, 0, 0));
        prop_assert!(schedule.is_well_formed());
        prop_assert!(schedule.items.len() <= max_items);
        let budget = d.delta_t().minus(cfg.reserve).as_seconds();
        for item in &schedule.items {
            prop_assert!(item.end_s() <= budget);
        }
        let sum: f64 = schedule.items.iter().map(|i| i.score).sum();
        prop_assert!((schedule.total_score - sum).abs() < 1e-9);
        // No duplicate clips.
        let mut ids: Vec<u64> = schedule.items.iter().map(|i| i.clip.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), schedule.items.len());
    }

    /// MMR diversification never invents items, never duplicates, and
    /// λ = 1 preserves the relevance prefix.
    #[test]
    fn mmr_invariants(
        cats in prop::collection::vec(0u16..10, 1..25),
        lambda in 0.0f64..1.0,
        k in 1usize..10,
    ) {
        let mut repo = ContentRepository::new(LocalProjection::new(GeoPoint::new(45.07, 7.69)));
        let ranked: Vec<ScoredClip> = cats
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                repo.ingest(meta(i as u64, c, 5, 1.0));
                scored(i as u64, 300, 1.0 - i as f64 * 0.01)
            })
            .collect();
        let out = diversify(&ranked, &repo, lambda, k);
        prop_assert!(out.len() <= k.min(ranked.len()));
        let mut ids: Vec<u64> = out.iter().map(|c| c.clip.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), out.len(), "no duplicates");
        for c in &out {
            prop_assert!(ranked.iter().any(|r| r.clip == c.clip), "invented item");
        }
        // Entropy is bounded by log2 of the list length.
        let h = category_entropy(&out, &repo);
        prop_assert!(h <= (out.len().max(1) as f64).log2() + 1e-9);
    }

    /// Differential: index-backed retrieval is bit-identical to the
    /// reference linear scan over random repositories, preferences,
    /// routes and exclusion sets.
    #[test]
    fn indexed_retrieval_equals_linear_scan(
        clip_specs in prop::collection::vec((0u16..30, 0u64..400, 1u64..30), 1..60),
        geo_specs in prop::collection::vec(
            (0usize..60, -3_000.0f64..3_000.0, 0.0f64..12_000.0),
            0..10,
        ),
        likes in prop::collection::vec(0u16..30, 0..5),
        dislikes in prop::collection::vec(0u16..30, 0..5),
        exclude_sel in prop::collection::vec(0usize..60, 0..10),
        with_drive in 0u32..2,
        max_candidates in 1usize..30,
    ) {
        let now = TimePoint::at(20, 8, 0, 0);
        let mut repo = ContentRepository::new(LocalProjection::new(GeoPoint::new(45.07, 7.69)));
        let proj = *repo.projection();
        for (i, (cat, age_h, dur)) in clip_specs.iter().enumerate() {
            let mut m = meta(i as u64, *cat, *dur, 1.0);
            m.published = now.rewind(TimeSpan::hours(*age_h));
            if let Some((_, dy, dx)) =
                geo_specs.iter().find(|(idx, _, _)| *idx == i)
            {
                m.geo = Some(GeoTag {
                    point: proj.unproject(ProjectedPoint::new(*dx, *dy)),
                    radius_m: 500.0,
                });
            }
            repo.ingest(m);
        }
        let mut fb = FeedbackStore::default();
        for &c in &likes {
            for _ in 0..3 {
                fb.record(FeedbackEvent { user: UserId(1), clip: None, category: CategoryId::new(c), kind: FeedbackKind::Like, time: now });
            }
        }
        for &c in &dislikes {
            for _ in 0..3 {
                fb.record(FeedbackEvent { user: UserId(1), clip: None, category: CategoryId::new(c), kind: FeedbackKind::Dislike, time: now });
            }
        }
        let prefs = fb.preferences(UserId(1), now);
        let ctx = if with_drive == 1 {
            ListenerContext {
                now,
                position: Some(ProjectedPoint::new(0.0, 0.0)),
                speed_mps: 10.0,
                drive: Some(drive(18)),
                ambient: Ambient::default(),
            }
        } else {
            ListenerContext::stationary(now)
        };
        let exclude: HashSet<ClipId> =
            exclude_sel.iter().map(|&i| ClipId(i as u64)).collect();
        // scan_below: 0 forces the index walk so the differential
        // property exercises it even on small generated catalogs.
        let filter = CandidateFilter { max_candidates, scan_below: 0, ..Default::default() };
        let weights = ScoringWeights::default();
        let scan = filter.candidates_excluding(&repo, &prefs, &ctx, &weights, &exclude);
        let indexed = filter.candidates_indexed_excluding(&repo, &prefs, &ctx, &weights, &exclude);
        prop_assert_eq!(scan, indexed);
    }

    /// `sanitize_score` always lands in [0, 1] and never passes a NaN
    /// through, including for the IEEE specials.
    #[test]
    fn sanitize_score_is_total(sel in 0u32..6, v in -100.0f64..100.0) {
        let input = match sel {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => f64::MIN_POSITIVE,
            _ => v,
        };
        let s = sanitize_score(input);
        prop_assert!(!s.is_nan());
        prop_assert!((0.0..=1.0).contains(&s), "{} -> {}", input, s);
        // Idempotent and order-preserving on the valid range.
        prop_assert_eq!(sanitize_score(s), s);
        if (0.0..=1.0).contains(&input) {
            prop_assert_eq!(s, input);
        }
    }
}
