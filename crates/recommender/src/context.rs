//! The listener context: everything the paper lists as context —
//! "profile, emotional state, activity, geographical position, weather,
//! or other factors contributing to the state of the listener" — that
//! the prototype actually senses: position, trajectory, speed and time.

use pphcr_geo::{DistractionZone, Polyline, ProjectedPoint, TimePoint, TimeSpan};
use pphcr_trajectory::TripPrediction;
use serde::{Deserialize, Serialize};

/// Context of an in-progress drive (present when the proactivity model
/// detected a trip).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveContext {
    /// Destination/ΔT prediction from the mobility model.
    pub prediction: TripPrediction,
    /// The expected remaining route geometry.
    pub route_ahead: Polyline,
    /// Distraction zones on the remaining route, as arc-length
    /// intervals (meters from the current position).
    pub zones: Vec<DistractionZone>,
    /// Expected mean driving speed over the remaining route, m/s.
    pub expected_speed_mps: f64,
}

impl DriveContext {
    /// Builds the drive context from a prediction.
    ///
    /// `zones` must be expressed relative to the *remaining* route (the
    /// caller re-bases road-network zones onto `route_ahead`).
    #[must_use]
    pub fn new(prediction: TripPrediction, zones: Vec<DistractionZone>) -> Self {
        let route_ahead = Polyline::new(prediction.route_ahead.clone());
        let remaining_s = prediction.remaining.as_seconds().max(1) as f64;
        let expected_speed_mps = (route_ahead.length_m() / remaining_s).max(1.0);
        DriveContext { prediction, route_ahead, zones, expected_speed_mps }
    }

    /// The predicted time still to drive — the recommender's ΔT.
    #[must_use]
    pub fn delta_t(&self) -> TimeSpan {
        self.prediction.remaining
    }

    /// Converts an along-route distance (meters from the current
    /// position) to seconds from now, under the expected speed.
    #[must_use]
    pub fn eta_seconds(&self, along_m: f64) -> u64 {
        (along_m.max(0.0) / self.expected_speed_mps).round() as u64
    }

    /// Distraction zones as time windows `[start_s, end_s)` measured in
    /// seconds from now, sorted by start.
    #[must_use]
    pub fn zone_windows(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .zones
            .iter()
            .map(|z| {
                (
                    self.eta_seconds(z.start_m),
                    self.eta_seconds(z.end_m).max(self.eta_seconds(z.start_m) + 1),
                )
            })
            .collect();
        out.sort_unstable();
        out
    }
}

/// Weather at the listener's position — one of the "richer contexts"
/// the paper's future work names. Adverse weather raises driving
/// demand (the scheduler gets more conservative) and makes weather and
/// traffic content more relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Weather {
    /// Clear conditions.
    #[default]
    Clear,
    /// Rain.
    Rain,
    /// Snow.
    Snow,
    /// Fog.
    Fog,
}

impl Weather {
    /// Multiplier on the route's distraction pressure.
    #[must_use]
    pub fn distraction_multiplier(self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Rain => 1.3,
            Weather::Fog => 1.5,
            Weather::Snow => 1.7,
        }
    }

    /// True when conditions make weather/traffic content urgent.
    #[must_use]
    pub fn is_adverse(self) -> bool {
        self != Weather::Clear
    }
}

/// The listener's inferred activity (from device speed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activity {
    /// Not moving.
    Still,
    /// Pedestrian speeds.
    Walking,
    /// Vehicle speeds.
    Driving,
}

/// Ambient context beyond position/trajectory: weather now, more
/// dimensions (e.g. calendar, companionship) later.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Ambient {
    /// Current weather.
    pub weather: Weather,
}

/// The full listener context at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ListenerContext {
    /// Current time.
    pub now: TimePoint,
    /// Current position (projected frame), when a fix is available.
    pub position: Option<ProjectedPoint>,
    /// Current speed, m/s.
    pub speed_mps: f64,
    /// Drive context, when a trip is in progress and predicted.
    pub drive: Option<DriveContext>,
    /// Ambient context (weather, …).
    pub ambient: Ambient,
}

impl ListenerContext {
    /// A stationary context (no drive): the manual-skip scenario.
    #[must_use]
    pub fn stationary(now: TimePoint) -> Self {
        ListenerContext {
            now,
            position: None,
            speed_mps: 0.0,
            drive: None,
            ambient: Ambient::default(),
        }
    }

    /// The hour-of-day feature.
    #[must_use]
    pub fn hour(&self) -> u64 {
        self.now.hour_of_day()
    }

    /// The listener's inferred activity.
    #[must_use]
    pub fn activity(&self) -> Activity {
        if self.speed_mps <= 0.5 {
            Activity::Still
        } else if self.speed_mps <= 2.5 {
            Activity::Walking
        } else {
            Activity::Driving
        }
    }

    /// True when the listener is driving (speed above walking pace).
    #[must_use]
    pub fn is_driving(&self) -> bool {
        self.activity() == Activity::Driving
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_geo::{NodeId, NodeKind};

    fn prediction(remaining_s: u64, route_len_m: f64) -> TripPrediction {
        TripPrediction {
            destination: 1,
            confidence: 0.8,
            total_duration: TimeSpan::seconds(remaining_s + 60),
            remaining: TimeSpan::seconds(remaining_s),
            route_ahead: vec![ProjectedPoint::new(0.0, 0.0), ProjectedPoint::new(route_len_m, 0.0)],
            complexity: 1.0,
            posterior: vec![(1, 0.8), (2, 0.2)],
        }
    }

    #[test]
    fn expected_speed_derived_from_route_and_delta_t() {
        let ctx = DriveContext::new(prediction(600, 6_000.0), vec![]);
        assert!((ctx.expected_speed_mps - 10.0).abs() < 1e-9);
        assert_eq!(ctx.delta_t(), TimeSpan::seconds(600));
    }

    #[test]
    fn eta_conversion() {
        let ctx = DriveContext::new(prediction(600, 6_000.0), vec![]);
        assert_eq!(ctx.eta_seconds(1_000.0), 100);
        assert_eq!(ctx.eta_seconds(-5.0), 0, "behind us means now");
    }

    #[test]
    fn zone_windows_sorted_and_nonempty() {
        let zones = vec![
            DistractionZone {
                node: NodeId(5),
                kind: NodeKind::Roundabout,
                start_m: 3_000.0,
                end_m: 3_120.0,
            },
            DistractionZone {
                node: NodeId(2),
                kind: NodeKind::Intersection,
                start_m: 960.0,
                end_m: 1_040.0,
            },
        ];
        let ctx = DriveContext::new(prediction(600, 6_000.0), zones);
        let w = ctx.zone_windows();
        assert_eq!(w, vec![(96, 104), (300, 312)]);
    }

    #[test]
    fn degenerate_zone_still_occupies_one_second() {
        let zones = vec![DistractionZone {
            node: NodeId(1),
            kind: NodeKind::Intersection,
            start_m: 100.0,
            end_m: 100.0,
        }];
        let ctx = DriveContext::new(prediction(600, 6_000.0), zones);
        let w = ctx.zone_windows();
        assert_eq!(w.len(), 1);
        assert!(w[0].1 > w[0].0);
    }

    #[test]
    fn stationary_context() {
        let ctx = ListenerContext::stationary(TimePoint::at(0, 10, 42, 30));
        assert!(!ctx.is_driving());
        assert!(ctx.drive.is_none());
        assert_eq!(ctx.hour(), 10);
    }

    #[test]
    fn zero_remaining_does_not_divide_by_zero() {
        let ctx = DriveContext::new(prediction(0, 5_000.0), vec![]);
        assert!(ctx.expected_speed_mps.is_finite());
        assert!(ctx.expected_speed_mps >= 1.0);
    }
}
