//! The ensemble effect of the recommendation list.
//!
//! Paper §3 (future work): *"we plan to create recommendations list
//! taking into account richer contexts: time, activity, weather, and
//! the ensemble effect of the recommendations list."* A list of five
//! wine podcasts scores higher than a varied morning, yet bores the
//! listener by the third item — the items' value is not independent.
//!
//! [`diversify`] implements maximal-marginal-relevance (MMR)
//! re-ranking: items are picked greedily by relevance *minus* their
//! similarity to what the list already holds. [`category_entropy`]
//! quantifies the resulting spread for the evaluation harness.

use crate::candidates::ScoredClip;
use pphcr_catalog::ContentRepository;

/// Similarity between two clips for ensemble purposes: same category
/// is near-duplication, same kind (two news bulletins) is mild overlap.
#[must_use]
pub fn ensemble_similarity(repo: &ContentRepository, a: &ScoredClip, b: &ScoredClip) -> f64 {
    match (repo.get(a.clip), repo.get(b.clip)) {
        (Some(ma), Some(mb)) => {
            if ma.category == mb.category {
                1.0
            } else if ma.kind == mb.kind {
                0.3
            } else {
                0.0
            }
        }
        _ => 0.0,
    }
}

/// MMR re-ranking: selects up to `k` items maximizing
/// `lambda · relevance − (1 − lambda) · max-similarity-to-selected`.
///
/// `lambda = 1` reproduces the input order (pure relevance);
/// `lambda = 0` maximizes variety regardless of relevance. The returned
/// items keep their original scores — the re-ranking changes *order and
/// membership*, not relevance.
#[must_use]
pub fn diversify(
    ranked: &[ScoredClip],
    repo: &ContentRepository,
    lambda: f64,
    k: usize,
) -> Vec<ScoredClip> {
    let lambda = lambda.clamp(0.0, 1.0);
    // The MMR objective feeds `total_cmp`; a NaN relevance would win
    // every comparison. `ScoredClip::new` sanitizes scores into [0, 1],
    // so filter defensively rather than trusting every caller.
    let mut remaining: Vec<&ScoredClip> = ranked.iter().filter(|c| c.score.is_finite()).collect();
    let mut selected: Vec<ScoredClip> = Vec::with_capacity(k.min(ranked.len()));
    while selected.len() < k && !remaining.is_empty() {
        let Some((best_idx, _)) = remaining
            .iter()
            .enumerate()
            .map(|(i, cand)| {
                let max_sim = selected
                    .iter()
                    .map(|s| ensemble_similarity(repo, cand, s))
                    .fold(0.0f64, f64::max);
                (i, lambda * cand.score - (1.0 - lambda) * max_sim)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            break;
        };
        selected.push(remaining.remove(best_idx).clone());
    }
    selected
}

/// Shannon entropy (bits) of the category distribution of a list — the
/// harness's variety metric. 0 for a single-category list, `log2(n)`
/// for `n` equally represented categories.
#[must_use]
pub fn category_entropy(items: &[ScoredClip], repo: &ContentRepository) -> f64 {
    // BTreeMap, not HashMap: the entropy sum is floating-point, so the
    // visit order changes the low bits — hash order would make the
    // variety metric differ between identical runs (caught by the D4
    // `hash-iter` lint).
    let mut counts: std::collections::BTreeMap<u16, usize> = std::collections::BTreeMap::new();
    let mut total = 0usize;
    for item in items {
        if let Some(meta) = repo.get(item.clip) {
            *counts.entry(meta.category.0).or_insert(0) += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    counts
        .values()
        .map(|&n| {
            let p = n as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_audio::ClipId;
    use pphcr_catalog::{CategoryId, ClipKind, ClipMetadata};
    use pphcr_geo::{GeoPoint, LocalProjection, TimePoint, TimeSpan};

    fn repo_with(cats: &[u16]) -> ContentRepository {
        let mut r = ContentRepository::new(LocalProjection::new(GeoPoint::new(45.07, 7.69)));
        for (i, &c) in cats.iter().enumerate() {
            r.ingest(ClipMetadata {
                id: ClipId(i as u64),
                title: format!("clip {i}"),
                kind: ClipKind::Podcast,
                category: CategoryId::new(c),
                category_confidence: 1.0,
                duration: TimeSpan::minutes(5),
                published: TimePoint::at(0, 6, 0, 0),
                geo: None,
                transcript: Vec::new(),
            });
        }
        r
    }

    fn scored(id: u64, score: f64) -> ScoredClip {
        ScoredClip {
            clip: ClipId(id),
            duration: TimeSpan::minutes(5),
            score,
            content_score: score,
            context_score: score,
            geo_distance_m: None,
            along_route_m: None,
        }
    }

    /// Five wine clips scoring high, two food and one comedy lower.
    fn wine_heavy() -> (ContentRepository, Vec<ScoredClip>) {
        let repo = repo_with(&[8, 8, 8, 8, 8, 7, 7, 19]);
        let ranked = vec![
            scored(0, 0.9),
            scored(1, 0.89),
            scored(2, 0.88),
            scored(3, 0.87),
            scored(4, 0.86),
            scored(5, 0.7),
            scored(6, 0.69),
            scored(7, 0.6),
        ];
        (repo, ranked)
    }

    #[test]
    fn lambda_one_keeps_relevance_order() {
        let (repo, ranked) = wine_heavy();
        let out = diversify(&ranked, &repo, 1.0, 5);
        let ids: Vec<u64> = out.iter().map(|c| c.clip.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn moderate_lambda_breaks_up_monoculture() {
        let (repo, ranked) = wine_heavy();
        let out = diversify(&ranked, &repo, 0.6, 5);
        let entropy_mmr = category_entropy(&out, &repo);
        let entropy_top = category_entropy(&diversify(&ranked, &repo, 1.0, 5), &repo);
        assert!(entropy_mmr > entropy_top, "{entropy_mmr} vs {entropy_top}");
        // The best wine clip still leads: relevance is not discarded.
        assert_eq!(out[0].clip, ClipId(0));
        // But not all five wines make the list.
        let wines =
            out.iter().filter(|c| repo.get(c.clip).unwrap().category == CategoryId::new(8)).count();
        assert!(wines < 5, "{wines}");
    }

    #[test]
    fn lambda_zero_maximizes_variety() {
        let (repo, ranked) = wine_heavy();
        let out = diversify(&ranked, &repo, 0.0, 3);
        let cats: std::collections::HashSet<u16> =
            out.iter().map(|c| repo.get(c.clip).unwrap().category.0).collect();
        assert_eq!(cats.len(), 3, "three distinct categories: {cats:?}");
    }

    #[test]
    fn k_truncates_and_handles_short_input() {
        let (repo, ranked) = wine_heavy();
        assert_eq!(diversify(&ranked, &repo, 0.7, 3).len(), 3);
        assert_eq!(diversify(&ranked, &repo, 0.7, 100).len(), ranked.len());
        assert!(diversify(&[], &repo, 0.7, 3).is_empty());
    }

    #[test]
    fn entropy_bounds() {
        let repo = repo_with(&[1, 1, 1, 1]);
        let uniform = vec![scored(0, 0.5), scored(1, 0.5), scored(2, 0.5), scored(3, 0.5)];
        assert_eq!(category_entropy(&uniform, &repo), 0.0, "single category");
        let repo4 = repo_with(&[0, 1, 2, 3]);
        let spread = vec![scored(0, 0.5), scored(1, 0.5), scored(2, 0.5), scored(3, 0.5)];
        assert!((category_entropy(&spread, &repo4) - 2.0).abs() < 1e-9, "log2(4)");
        assert_eq!(category_entropy(&[], &repo), 0.0);
    }

    #[test]
    fn similarity_levels() {
        let mut repo = repo_with(&[8, 8, 7]);
        // Make clip 2 a different kind to exercise the 0.0 branch.
        let mut meta = repo.get(ClipId(2)).unwrap().clone();
        meta.kind = ClipKind::MusicTrack;
        repo.ingest(meta);
        let a = scored(0, 0.5);
        let b = scored(1, 0.5);
        let c = scored(2, 0.5);
        assert_eq!(ensemble_similarity(&repo, &a, &b), 1.0);
        assert_eq!(ensemble_similarity(&repo, &a, &c), 0.0);
    }
}
