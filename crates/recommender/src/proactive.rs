//! The two-phase proactivity model.
//!
//! The paper builds on Woerndl et al.'s model for proactivity in
//! mobile recommender systems (its reference [13]): phase 1 decides
//! *whether the current situation warrants a recommendation at all*,
//! phase 2 decides *what* to recommend. This module is phase 1. A
//! recommendation is triggered when:
//!
//! * a trip has started (sustained driving speed),
//! * the destination prediction is confident enough,
//! * the predicted remaining time ΔT is long enough to be worth
//!   interrupting,
//! * the driver is not currently inside a distraction zone,
//! * a cooldown since the previous proactive delivery has elapsed.

use crate::context::ListenerContext;
use pphcr_geo::{TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};

/// Why the proactivity model fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trigger {
    /// A predicted trip with enough remaining time started.
    TripStarted,
    /// An existing schedule ran dry mid-trip and can be refilled.
    ScheduleUnderrun,
}

/// Phase-1 configuration and state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProactivityModel {
    /// Minimum sustained driving time before acting.
    pub min_driving: TimeSpan,
    /// Minimum prediction confidence.
    pub min_confidence: f64,
    /// Minimum remaining ΔT worth interrupting for.
    pub min_delta_t: TimeSpan,
    /// Cooldown between proactive deliveries.
    pub cooldown: TimeSpan,
    driving_since: Option<TimePoint>,
    last_delivery: Option<TimePoint>,
}

impl Default for ProactivityModel {
    fn default() -> Self {
        ProactivityModel {
            min_driving: TimeSpan::minutes(2),
            min_confidence: 0.4,
            min_delta_t: TimeSpan::minutes(5),
            cooldown: TimeSpan::minutes(10),
            driving_since: None,
            last_delivery: None,
        }
    }
}

impl ProactivityModel {
    /// Feeds one context observation; returns a trigger when a
    /// proactive recommendation should be generated *now*.
    pub fn observe(&mut self, ctx: &ListenerContext) -> Option<Trigger> {
        // Track sustained driving.
        if ctx.is_driving() {
            self.driving_since.get_or_insert(ctx.now);
        } else {
            self.driving_since = None;
        }
        let driving_since = self.driving_since?;
        if ctx.now.since(driving_since) < self.min_driving {
            return None;
        }
        let drive = ctx.drive.as_ref()?;
        if drive.prediction.confidence < self.min_confidence {
            return None;
        }
        if drive.delta_t() < self.min_delta_t {
            return None;
        }
        // Not while threading a junction: a zone whose window starts at
        // 0 seconds from now means the driver is inside it.
        if drive.zone_windows().iter().any(|&(a, _)| a == 0) {
            return None;
        }
        if let Some(last) = self.last_delivery {
            if ctx.now.since(last) < self.cooldown {
                return None;
            }
        }
        self.last_delivery = Some(ctx.now);
        Some(Trigger::TripStarted)
    }

    /// Non-mutating peek: would [`Self::observe`] fire for `ctx`?
    /// Replicates the same gate sequence without touching the driving
    /// clock or the cooldown state, so batch pipelines can decide
    /// whether candidate generation is worth speculating for a user
    /// before the authoritative sequential `observe` call.
    #[must_use]
    pub fn would_trigger(&self, ctx: &ListenerContext) -> bool {
        let driving_since = if ctx.is_driving() {
            match self.driving_since {
                Some(t) => Some(t),
                None => Some(ctx.now),
            }
        } else {
            None
        };
        let Some(driving_since) = driving_since else { return false };
        if ctx.now.since(driving_since) < self.min_driving {
            return false;
        }
        let Some(drive) = ctx.drive.as_ref() else { return false };
        if drive.prediction.confidence < self.min_confidence {
            return false;
        }
        if drive.delta_t() < self.min_delta_t {
            return false;
        }
        if drive.zone_windows().iter().any(|&(a, _)| a == 0) {
            return false;
        }
        if let Some(last) = self.last_delivery {
            if ctx.now.since(last) < self.cooldown {
                return false;
            }
        }
        true
    }

    /// Resets the driving state (trip ended, app restarted).
    pub fn reset(&mut self) {
        self.driving_since = None;
    }

    /// When the model last fired.
    #[must_use]
    pub fn last_delivery(&self) -> Option<TimePoint> {
        self.last_delivery
    }

    /// When sustained driving began, if the model currently believes
    /// the listener is driving.
    #[must_use]
    pub fn driving_since(&self) -> Option<TimePoint> {
        self.driving_since
    }

    /// Restores the mutable trigger state after a snapshot reload.
    pub fn restore_state(
        &mut self,
        driving_since: Option<TimePoint>,
        last_delivery: Option<TimePoint>,
    ) {
        self.driving_since = driving_since;
        self.last_delivery = last_delivery;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Ambient, DriveContext};
    use pphcr_geo::{DistractionZone, NodeId, NodeKind, ProjectedPoint};
    use pphcr_trajectory::TripPrediction;

    fn prediction(confidence: f64, remaining_min: u64) -> TripPrediction {
        TripPrediction {
            destination: 1,
            confidence,
            total_duration: TimeSpan::minutes(remaining_min + 2),
            remaining: TimeSpan::minutes(remaining_min),
            route_ahead: vec![
                ProjectedPoint::new(0.0, 0.0),
                ProjectedPoint::new(remaining_min as f64 * 600.0, 0.0),
            ],
            complexity: 1.0,
            posterior: vec![(1, confidence)],
        }
    }

    fn driving_ctx(t: TimePoint, confidence: f64, remaining_min: u64) -> ListenerContext {
        ListenerContext {
            now: t,
            position: Some(ProjectedPoint::new(0.0, 0.0)),
            speed_mps: 10.0,
            drive: Some(DriveContext::new(prediction(confidence, remaining_min), vec![])),
            ambient: Ambient::default(),
        }
    }

    #[test]
    fn fires_after_sustained_driving() {
        let mut model = ProactivityModel::default();
        let t0 = TimePoint::at(0, 8, 0, 0);
        assert_eq!(model.observe(&driving_ctx(t0, 0.8, 20)), None, "just started");
        assert_eq!(
            model.observe(&driving_ctx(t0.advance(TimeSpan::minutes(1)), 0.8, 20)),
            None,
            "still under min driving time"
        );
        assert_eq!(
            model.observe(&driving_ctx(t0.advance(TimeSpan::minutes(2)), 0.8, 19)),
            Some(Trigger::TripStarted)
        );
    }

    #[test]
    fn stop_resets_driving_clock() {
        let mut model = ProactivityModel::default();
        let t0 = TimePoint::at(0, 8, 0, 0);
        model.observe(&driving_ctx(t0, 0.8, 20));
        // Red light: speed 0.
        let mut stopped = driving_ctx(t0.advance(TimeSpan::minutes(1)), 0.8, 19);
        stopped.speed_mps = 0.0;
        assert_eq!(model.observe(&stopped), None);
        // Moving again: the 2-minute clock restarts.
        let t2 = t0.advance(TimeSpan::minutes(2));
        assert_eq!(model.observe(&driving_ctx(t2, 0.8, 18)), None);
        let t4 = t0.advance(TimeSpan::minutes(4));
        assert_eq!(model.observe(&driving_ctx(t4, 0.8, 16)), Some(Trigger::TripStarted));
    }

    #[test]
    fn low_confidence_blocks() {
        let mut model = ProactivityModel::default();
        let t0 = TimePoint::at(0, 8, 0, 0);
        model.observe(&driving_ctx(t0, 0.2, 20));
        assert_eq!(model.observe(&driving_ctx(t0.advance(TimeSpan::minutes(3)), 0.2, 17)), None);
    }

    #[test]
    fn short_delta_t_blocks() {
        let mut model = ProactivityModel::default();
        let t0 = TimePoint::at(0, 8, 0, 0);
        model.observe(&driving_ctx(t0, 0.9, 4));
        assert_eq!(model.observe(&driving_ctx(t0.advance(TimeSpan::minutes(3)), 0.9, 4)), None);
    }

    #[test]
    fn cooldown_prevents_rapid_refire() {
        let mut model = ProactivityModel::default();
        let t0 = TimePoint::at(0, 8, 0, 0);
        model.observe(&driving_ctx(t0, 0.8, 30));
        let t3 = t0.advance(TimeSpan::minutes(3));
        assert_eq!(model.observe(&driving_ctx(t3, 0.8, 27)), Some(Trigger::TripStarted));
        let t5 = t0.advance(TimeSpan::minutes(5));
        assert_eq!(model.observe(&driving_ctx(t5, 0.8, 25)), None, "cooldown");
        let t14 = t0.advance(TimeSpan::minutes(14));
        assert_eq!(
            model.observe(&driving_ctx(t14, 0.8, 16)),
            Some(Trigger::TripStarted),
            "cooldown elapsed"
        );
    }

    #[test]
    fn no_drive_context_blocks() {
        let mut model = ProactivityModel::default();
        let t0 = TimePoint::at(0, 8, 0, 0);
        let mut ctx = ListenerContext::stationary(t0);
        ctx.speed_mps = 10.0; // moving but unpredicted
        model.observe(&ctx);
        let mut later = ListenerContext::stationary(t0.advance(TimeSpan::minutes(3)));
        later.speed_mps = 10.0;
        assert_eq!(model.observe(&later), None);
    }

    #[test]
    fn would_trigger_peek_matches_observe_without_mutating() {
        let mut model = ProactivityModel::default();
        let t0 = TimePoint::at(0, 8, 0, 0);
        // Peek repeatedly before any observe: must not start the
        // driving clock.
        for _ in 0..3 {
            assert!(!model.would_trigger(&driving_ctx(t0, 0.8, 20)));
        }
        assert_eq!(model.observe(&driving_ctx(t0, 0.8, 20)), None);
        let steps = [
            (1u64, 0.8, 20u64),
            (2, 0.8, 19),
            (3, 0.2, 18), // confidence dip
            (4, 0.8, 17),
            (5, 0.8, 16), // inside cooldown after the minute-2 fire
            (13, 0.8, 8),
        ];
        for (min, conf, rem) in steps {
            let ctx = driving_ctx(t0.advance(TimeSpan::minutes(min)), conf, rem);
            let predicted = model.would_trigger(&ctx);
            let fired = model.observe(&ctx).is_some();
            assert_eq!(predicted, fired, "peek disagrees with observe at minute {min}");
        }
    }

    #[test]
    fn inside_zone_blocks() {
        let mut model = ProactivityModel::default();
        let t0 = TimePoint::at(0, 8, 0, 0);
        // A zone starting right here (0 m along).
        let zones = vec![DistractionZone {
            node: NodeId(0),
            kind: NodeKind::Roundabout,
            start_m: 0.0,
            end_m: 80.0,
        }];
        let mk = |t| ListenerContext {
            now: t,
            position: Some(ProjectedPoint::new(0.0, 0.0)),
            speed_mps: 10.0,
            drive: Some(DriveContext::new(prediction(0.9, 20), zones.clone())),
            ambient: Ambient::default(),
        };
        model.observe(&mk(t0));
        assert_eq!(model.observe(&mk(t0.advance(TimeSpan::minutes(3)))), None);
    }
}
