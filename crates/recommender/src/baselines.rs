//! Baseline recommenders for the evaluation harness.
//!
//! The paper has no open-source comparator, so the benches compare the
//! compound context-aware recommender against the standard internal
//! baselines: global popularity, content-only (the compound score with
//! `w_c = 1`, i.e. context ignored), and seeded random.

use crate::candidates::ScoredClip;
use crate::context::ListenerContext;
use crate::score::ScoringWeights;
use pphcr_audio::ClipId;
use pphcr_catalog::ContentRepository;
use pphcr_userdata::{FeedbackStore, PreferenceVector, UserId};
use std::collections::HashMap;

/// Ranks all repository clips by global like/listen counts — what a
/// non-personalized "most popular" rail would play.
#[must_use]
pub fn popularity_ranking(repo: &ContentRepository, feedback: &FeedbackStore) -> Vec<ScoredClip> {
    // Count positive events per clip over the whole population.
    let mut counts: HashMap<ClipId, f64> = HashMap::new();
    let mut max_count = 0.0f64;
    for user in feedback.known_users() {
        for ev in feedback.events(user) {
            if let Some(clip) = ev.clip {
                if ev.kind.weight() > 0.0 {
                    let c = counts.entry(clip).or_insert(0.0);
                    *c += 1.0;
                    max_count = max_count.max(*c);
                }
            }
        }
    }
    let denom = max_count.max(1.0);
    // The floor score keeps the baseline operational on a cold
    // population: "most popular" rails play *something* even before any
    // likes arrive.
    let mut out: Vec<ScoredClip> = repo
        .iter()
        .map(|meta| ScoredClip {
            clip: meta.id,
            duration: meta.duration,
            score: 0.05 + 0.95 * (counts.get(&meta.id).copied().unwrap_or(0.0) / denom),
            content_score: 0.0,
            context_score: 0.0,
            geo_distance_m: None,
            along_route_m: None,
        })
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.clip.cmp(&b.clip)));
    out
}

/// Content-only ranking: the compound recommender with the context term
/// switched off (`w_c = 1`). The ablation arm of experiment E9.
#[must_use]
pub fn content_only_ranking(
    repo: &ContentRepository,
    feedback: &FeedbackStore,
    user: UserId,
    ctx: &ListenerContext,
    base: &ScoringWeights,
) -> Vec<ScoredClip> {
    let weights = ScoringWeights { content_weight: 1.0, ..*base };
    let filter = crate::candidates::CandidateFilter::default();
    let prefs = feedback.preferences(user, ctx.now);
    filter.candidates(repo, &prefs, ctx, &weights)
}

/// Seeded pseudo-random ranking (uniform shuffle) — the floor any
/// learned method must clear.
#[must_use]
pub fn random_ranking(repo: &ContentRepository, seed: u64) -> Vec<ScoredClip> {
    let mut out: Vec<ScoredClip> = repo
        .iter()
        .map(|meta| {
            // SplitMix-style hash of (seed, id) as the sort key.
            let mut z = seed ^ meta.id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let score = (z >> 11) as f64 / (1u64 << 53) as f64;
            ScoredClip {
                clip: meta.id,
                duration: meta.duration,
                score,
                content_score: 0.0,
                context_score: 0.0,
                geo_distance_m: None,
                along_route_m: None,
            }
        })
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.clip.cmp(&b.clip)));
    out
}

/// Utility for evaluation: mean preference alignment of the top-k of a
/// ranking, i.e. how much the listener actually likes what a strategy
/// would play. Shared by E9's harness.
#[must_use]
pub fn mean_pref_at_k(
    ranking: &[ScoredClip],
    repo: &ContentRepository,
    prefs: &PreferenceVector,
    k: usize,
) -> f64 {
    let top: Vec<f64> = ranking
        .iter()
        .take(k)
        .filter_map(|c| repo.get(c.clip))
        .map(|meta| prefs.score(meta.category))
        .collect();
    if top.is_empty() {
        return 0.0;
    }
    top.iter().sum::<f64>() / top.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_catalog::{CategoryId, ClipKind, ClipMetadata};
    use pphcr_geo::{GeoPoint, LocalProjection, TimePoint, TimeSpan};
    use pphcr_userdata::{FeedbackEvent, FeedbackKind};

    const TORINO: GeoPoint = GeoPoint { lat: 45.0703, lon: 7.6869 };

    fn repo(n: u64) -> ContentRepository {
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        for i in 0..n {
            r.ingest(ClipMetadata {
                id: ClipId(i),
                title: format!("clip {i}"),
                kind: ClipKind::Podcast,
                category: CategoryId::new((i % 30) as u16),
                category_confidence: 1.0,
                duration: TimeSpan::minutes(5),
                published: TimePoint::at(0, 6, 0, 0),
                geo: None,
                transcript: Vec::new(),
            });
        }
        r
    }

    #[test]
    fn popularity_ranks_liked_clips_first() {
        let r = repo(10);
        let mut fb = FeedbackStore::default();
        let t = TimePoint::at(0, 9, 0, 0);
        for user in 0..5 {
            fb.record(FeedbackEvent {
                user: UserId(user),
                clip: Some(ClipId(7)),
                category: CategoryId::new(7),
                kind: FeedbackKind::Like,
                time: t,
            });
        }
        fb.record(FeedbackEvent {
            user: UserId(0),
            clip: Some(ClipId(3)),
            category: CategoryId::new(3),
            kind: FeedbackKind::Like,
            time: t,
        });
        // Skips do not add popularity.
        fb.record(FeedbackEvent {
            user: UserId(1),
            clip: Some(ClipId(5)),
            category: CategoryId::new(5),
            kind: FeedbackKind::Skip,
            time: t,
        });
        let ranking = popularity_ranking(&r, &fb);
        assert_eq!(ranking[0].clip, ClipId(7));
        assert_eq!(ranking[1].clip, ClipId(3));
        assert!((ranking[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_varies_across_seeds() {
        let r = repo(20);
        let a = random_ranking(&r, 1);
        let b = random_ranking(&r, 1);
        let c = random_ranking(&r, 2);
        let ids = |v: &[ScoredClip]| v.iter().map(|x| x.clip).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        assert_ne!(ids(&a), ids(&c));
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn content_only_ignores_context_weighting() {
        let r = repo(30);
        let mut fb = FeedbackStore::default();
        let t = TimePoint::at(0, 9, 0, 0);
        for _ in 0..3 {
            fb.record(FeedbackEvent {
                user: UserId(1),
                clip: None,
                category: CategoryId::new(8),
                kind: FeedbackKind::Like,
                time: t,
            });
        }
        let ctx = ListenerContext::stationary(t);
        let ranking = content_only_ranking(&r, &fb, UserId(1), &ctx, &ScoringWeights::default());
        let top_meta = r.get(ranking[0].clip).unwrap();
        assert_eq!(top_meta.category, CategoryId::new(8));
    }

    #[test]
    fn mean_pref_at_k_reflects_alignment() {
        let r = repo(30);
        let mut fb = FeedbackStore::default();
        let t = TimePoint::at(0, 9, 0, 0);
        for _ in 0..3 {
            fb.record(FeedbackEvent {
                user: UserId(1),
                clip: None,
                category: CategoryId::new(8),
                kind: FeedbackKind::Like,
                time: t,
            });
        }
        let prefs = fb.preferences(UserId(1), t);
        let ctx = ListenerContext::stationary(t);
        let personalized =
            content_only_ranking(&r, &fb, UserId(1), &ctx, &ScoringWeights::default());
        let random = random_ranking(&r, 99);
        let p = mean_pref_at_k(&personalized, &r, &prefs, 3);
        let q = mean_pref_at_k(&random, &r, &prefs, 3);
        assert!(p > q, "personalized {p} vs random {q}");
    }

    #[test]
    fn empty_world_degrades_gracefully() {
        let r = repo(0);
        let fb = FeedbackStore::default();
        assert!(popularity_ranking(&r, &fb).is_empty());
        assert!(random_ranking(&r, 5).is_empty());
        assert_eq!(mean_pref_at_k(&[], &r, &PreferenceVector::neutral(), 10), 0.0);
    }
}
