//! The ΔT slot scheduler.
//!
//! Fig. 2 of the paper: when the car starts moving the system predicts
//! a travel duration ΔT and "tries to allocate the most relevant
//! content for the available time ΔT, recommending media items A, B, C,
//! D. Item B is also relevant to location `L_B` the user will reach."
//!
//! The scheduler solves that allocation:
//!
//! 1. **Selection** — a 0/1 knapsack over clip durations maximizing
//!    total compound relevance within the ΔT budget (exact DP at demo
//!    scale; a greedy density heuristic for very large candidate sets).
//! 2. **Ordering** — geo-pinned items are placed so their playback
//!    covers the moment the driver passes their location; unpinned
//!    items fill the space around them by score. Gaps are simply live
//!    radio (the linear stream is always underneath — that is the
//!    hybrid-radio premise).
//! 3. **Presentation constraints** — no item boundary (a transition,
//!    with its glance-at-the-screen moment) may fall inside a
//!    distraction zone around intersections and roundabouts; boundaries
//!    are pushed past zones, and items that no longer fit are dropped.

use crate::candidates::ScoredClip;
use crate::context::DriveContext;
use pphcr_audio::ClipId;
use pphcr_geo::{TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};

/// Selection algorithm for the knapsack phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selection {
    /// Exact dynamic program (10-second quantization).
    ExactDp,
    /// Greedy by score density (score / duration).
    Greedy,
}

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Keep this much of the end of the trip free (arrival manoeuvring).
    pub reserve: TimeSpan,
    /// At most this many items (the paper's list is short: A–D).
    pub max_items: usize,
    /// Half-width of the target window for geo-pinned items, seconds.
    pub pin_tolerance_s: u64,
    /// Enforce the distraction constraint (ablation switch, E10).
    pub avoid_distraction: bool,
    /// Selection algorithm.
    pub selection: Selection,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            reserve: TimeSpan::minutes(2),
            max_items: 6,
            pin_tolerance_s: 120,
            avoid_distraction: true,
            selection: Selection::ExactDp,
        }
    }
}

/// One scheduled item on the trip timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledItem {
    /// The clip to play.
    pub clip: ClipId,
    /// Start, seconds from "now" (the scheduling instant).
    pub start_s: u64,
    /// Playback duration.
    pub duration: TimeSpan,
    /// The item's compound score.
    pub score: f64,
    /// For geo-pinned items: the along-route position (meters) the item
    /// should cover.
    pub pinned_along_m: Option<f64>,
}

impl ScheduledItem {
    /// End instant, seconds from now.
    #[must_use]
    pub fn end_s(&self) -> u64 {
        self.start_s + self.duration.as_seconds()
    }
}

/// The packed trip schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotSchedule {
    /// Items in playback order.
    pub items: Vec<ScheduledItem>,
    /// Sum of scheduled items' scores (the relevance objective).
    pub total_score: f64,
    /// The ΔT budget the schedule was packed for.
    pub budget: TimeSpan,
    /// When the schedule was computed.
    pub computed_at: TimePoint,
}

impl SlotSchedule {
    /// Total scheduled playback time.
    #[must_use]
    pub fn filled(&self) -> TimeSpan {
        TimeSpan::seconds(self.items.iter().map(|i| i.duration.as_seconds()).sum())
    }

    /// Fraction of the budget filled with recommended audio, `[0, 1]`.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        let b = self.budget.as_seconds();
        if b == 0 {
            return 0.0;
        }
        self.filled().as_seconds() as f64 / b as f64
    }

    /// True when no item interval overlaps another and items are in
    /// start order (schedule invariant).
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.items.windows(2).all(|w| w[0].end_s() <= w[1].start_s)
    }
}

impl SchedulerConfig {
    /// Packs ranked candidates into the drive's ΔT (Fig. 2).
    #[must_use]
    pub fn pack(
        &self,
        ranked: &[ScoredClip],
        drive: &DriveContext,
        now: TimePoint,
    ) -> SlotSchedule {
        let budget_s = drive.delta_t().minus(self.reserve).as_seconds();
        let mut schedule = SlotSchedule {
            items: Vec::new(),
            total_score: 0.0,
            budget: drive.delta_t(),
            computed_at: now,
        };
        if budget_s < 30 {
            return schedule; // too short a trip to interrupt at all
        }
        // Phase 1: selection.
        // Non-finite scores would corrupt the knapsack value function
        // and the `total_cmp` orderings below; the constructor-level
        // sanitizer makes them impossible for well-formed candidates,
        // so drop any stragglers defensively.
        let usable: Vec<&ScoredClip> = ranked
            .iter()
            .filter(|c| {
                c.score.is_finite()
                    && c.duration.as_seconds() > 0
                    && c.duration.as_seconds() <= budget_s
            })
            .collect();
        let selected = match self.selection {
            Selection::ExactDp => knapsack_dp(&usable, budget_s, self.max_items),
            Selection::Greedy => knapsack_greedy(&usable, budget_s, self.max_items),
        };
        // Phase 2: ordering. Pinned items first, by along-route ETA.
        let zones = if self.avoid_distraction { drive.zone_windows() } else { Vec::new() };
        let mut pinned: Vec<(&ScoredClip, f64)> =
            selected.iter().filter_map(|c| c.along_route_m.map(|along| (*c, along))).collect();
        pinned.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut unpinned: Vec<&ScoredClip> =
            selected.iter().copied().filter(|c| c.along_route_m.is_none()).collect();
        unpinned.sort_by(|a, b| b.score.total_cmp(&a.score));

        let mut items: Vec<ScheduledItem> = Vec::with_capacity(selected.len());
        let mut cursor = 0u64;
        let mut un_iter = unpinned.into_iter().peekable();
        for (p, along) in pinned {
            let dur = p.duration.as_seconds();
            let eta = drive.eta_seconds(along);
            let ideal_start = eta.saturating_sub(dur / 2);
            // Fill the gap before the pinned item with unpinned content
            // that finishes in time.
            while let Some(next) = un_iter.peek() {
                let ndur = next.duration.as_seconds();
                if cursor + ndur <= ideal_start.max(cursor) && cursor + ndur <= budget_s {
                    let Some(c) = un_iter.next() else { break };
                    if let Some(item) = place(c, cursor, &zones, budget_s, None) {
                        cursor = item.end_s();
                        items.push(item);
                    }
                } else {
                    break;
                }
            }
            let start = ideal_start.max(cursor);
            if let Some(item) = place(p, start, &zones, budget_s, p.along_route_m) {
                // The pin is only honoured if playback still covers the
                // location within tolerance; otherwise schedule it as
                // ordinary content at the cursor.
                let covers = item.start_s <= eta + self.pin_tolerance_s
                    && item.end_s() + self.pin_tolerance_s >= eta;
                if covers {
                    cursor = item.end_s();
                    items.push(item);
                    continue;
                }
            }
            if let Some(item) = place(p, cursor, &zones, budget_s, None) {
                cursor = item.end_s();
                items.push(item);
            }
        }
        // Remaining unpinned fill the tail.
        for c in un_iter {
            if let Some(item) = place(c, cursor, &zones, budget_s, None) {
                cursor = item.end_s();
                items.push(item);
            }
        }
        items.sort_by_key(|i| i.start_s);
        schedule.total_score = items.iter().map(|i| i.score).sum();
        schedule.items = items;
        schedule
    }
}

/// Places an item at or after `start`, pushing its boundaries out of
/// distraction zones. Returns `None` when it no longer fits the budget.
fn place(
    clip: &ScoredClip,
    start: u64,
    zones: &[(u64, u64)],
    budget_s: u64,
    pinned_along_m: Option<f64>,
) -> Option<ScheduledItem> {
    let dur = clip.duration.as_seconds();
    let mut s = start;
    // Each push moves `s` to a zone end, so this terminates.
    loop {
        let start_zone = zones.iter().find(|&&(a, b)| s >= a && s < b);
        if let Some(&(_, b)) = start_zone {
            s = b;
            continue;
        }
        let end = s + dur;
        let end_zone = zones.iter().find(|&&(a, b)| end > a && end <= b);
        if let Some(&(_, b)) = end_zone {
            // Push the whole item so its end strictly clears the zone
            // (the +1 guarantees progress when end == b).
            s += b - end + 1;
            continue;
        }
        break;
    }
    (s + dur <= budget_s).then_some(ScheduledItem {
        clip: clip.clip,
        start_s: s,
        duration: clip.duration,
        score: clip.score,
        pinned_along_m,
    })
}

/// Exact 0/1 knapsack (10 s quantization) maximizing score under the
/// duration budget and an item-count cap.
fn knapsack_dp<'a>(
    items: &[&'a ScoredClip],
    budget_s: u64,
    max_items: usize,
) -> Vec<&'a ScoredClip> {
    const QUANTUM: u64 = 10;
    let cap = (budget_s / QUANTUM) as usize;
    let k = max_items.min(items.len());
    if cap == 0 || k == 0 {
        return Vec::new();
    }
    // dp[count][weight] = best score; parent pointers for reconstruction.
    let mut dp = vec![vec![f64::NEG_INFINITY; cap + 1]; k + 1];
    dp[0][0] = 0.0;
    // choice[i][count][weight] = did item i get taken to reach state.
    let mut taken = vec![vec![vec![false; cap + 1]; k + 1]; items.len()];
    for (i, it) in items.iter().enumerate() {
        let w = (it.duration.as_seconds().div_ceil(QUANTUM)) as usize;
        for count in (1..=k).rev() {
            for weight in (w..=cap).rev() {
                let cand = dp[count - 1][weight - w] + it.score;
                if cand > dp[count][weight] {
                    dp[count][weight] = cand;
                    taken[i][count][weight] = true;
                }
            }
        }
    }
    // Best terminal state.
    let (mut best_count, mut best_weight, mut best) = (0usize, 0usize, 0.0f64);
    for (count, row) in dp.iter().enumerate() {
        for (weight, &score) in row.iter().enumerate() {
            if score > best {
                best = score;
                best_count = count;
                best_weight = weight;
            }
        }
    }
    // Reconstruct by replaying items in reverse.
    let mut out = Vec::new();
    let (mut count, mut weight) = (best_count, best_weight);
    for (i, it) in items.iter().enumerate().rev() {
        if count == 0 {
            break;
        }
        if taken[i][count][weight] {
            let w = (it.duration.as_seconds().div_ceil(10)) as usize;
            out.push(*it);
            count -= 1;
            weight -= w;
        }
    }
    out.reverse();
    out
}

/// Greedy fallback: take items by score density until the budget or the
/// item cap is hit.
fn knapsack_greedy<'a>(
    items: &[&'a ScoredClip],
    budget_s: u64,
    max_items: usize,
) -> Vec<&'a ScoredClip> {
    let mut order: Vec<&&ScoredClip> = items.iter().collect();
    order.sort_by(|a, b| {
        let da = a.score / a.duration.as_seconds().max(1) as f64;
        let db = b.score / b.duration.as_seconds().max(1) as f64;
        db.total_cmp(&da)
    });
    let mut out = Vec::new();
    let mut used = 0u64;
    for it in order {
        if out.len() >= max_items {
            break;
        }
        let d = it.duration.as_seconds();
        if used + d <= budget_s {
            used += d;
            out.push(*it);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DriveContext;
    use pphcr_geo::{DistractionZone, NodeId, NodeKind, ProjectedPoint};
    use pphcr_trajectory::TripPrediction;

    fn clip(id: u64, minutes: u64, score: f64) -> ScoredClip {
        ScoredClip {
            clip: ClipId(id),
            duration: TimeSpan::minutes(minutes),
            score,
            content_score: score,
            context_score: score,
            geo_distance_m: None,
            along_route_m: None,
        }
    }

    fn pinned_clip(id: u64, minutes: u64, score: f64, along_m: f64) -> ScoredClip {
        ScoredClip {
            along_route_m: Some(along_m),
            geo_distance_m: Some(50.0),
            ..clip(id, minutes, score)
        }
    }

    /// 30-minute drive over a 18 km straight route (10 m/s).
    fn drive(zones: Vec<DistractionZone>) -> DriveContext {
        let prediction = TripPrediction {
            destination: 1,
            confidence: 0.9,
            total_duration: TimeSpan::minutes(32),
            remaining: TimeSpan::minutes(30),
            route_ahead: vec![ProjectedPoint::new(0.0, 0.0), ProjectedPoint::new(18_000.0, 0.0)],
            complexity: 1.0,
            posterior: vec![(1, 1.0)],
        };
        DriveContext::new(prediction, zones)
    }

    fn zone(start_m: f64, end_m: f64) -> DistractionZone {
        DistractionZone { node: NodeId(0), kind: NodeKind::Roundabout, start_m, end_m }
    }

    #[test]
    fn fills_budget_with_best_items() {
        let cfg = SchedulerConfig::default();
        let ranked = vec![clip(1, 10, 0.9), clip(2, 10, 0.8), clip(3, 10, 0.7), clip(4, 10, 0.2)];
        let sched = cfg.pack(&ranked, &drive(vec![]), TimePoint::at(0, 8, 0, 0));
        // Budget = 28 min → two 10-min clips fit before... actually 2.8
        // clips → two fit fully (28/10 = 2 with count cap 6).
        let ids: Vec<u64> = sched.items.iter().map(|i| i.clip.0).collect();
        assert!(ids.contains(&1) && ids.contains(&2), "{ids:?}");
        assert!(!ids.contains(&4) || ids.len() <= cfg.max_items);
        assert!(sched.is_well_formed());
        assert!(sched.filled() <= TimeSpan::minutes(28));
        assert!(sched.fill_ratio() > 0.5);
    }

    #[test]
    fn knapsack_beats_greedy_on_crafted_instance() {
        // Greedy by density takes the 0.9/5-min clip then cannot fit
        // both 12-min clips; DP fits 12 + 12 + short.
        let ranked = vec![clip(1, 13, 0.85), clip(2, 13, 0.85), clip(3, 5, 0.5)];
        let d = drive(vec![]);
        let dp_cfg = SchedulerConfig { selection: Selection::ExactDp, ..Default::default() };
        let greedy_cfg = SchedulerConfig { selection: Selection::Greedy, ..Default::default() };
        let t = TimePoint::at(0, 8, 0, 0);
        let dp = dp_cfg.pack(&ranked, &d, t);
        let greedy = greedy_cfg.pack(&ranked, &d, t);
        assert!(dp.total_score >= greedy.total_score);
        assert!(dp.total_score > 1.6, "both large clips selected: {}", dp.total_score);
    }

    #[test]
    fn exact_dp_matches_bruteforce_on_small_instances() {
        let items = [
            clip(1, 7, 0.31),
            clip(2, 11, 0.47),
            clip(3, 4, 0.22),
            clip(4, 9, 0.40),
            clip(5, 13, 0.55),
        ];
        let refs: Vec<&ScoredClip> = items.iter().collect();
        let budget = 22 * 60;
        let picked = knapsack_dp(&refs, budget, 6);
        let dp_score: f64 = picked.iter().map(|c| c.score).sum();
        // Brute force over all subsets.
        let mut best = 0.0f64;
        for mask in 0u32..(1 << items.len()) {
            let dur: u64 = items
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, c)| c.duration.as_seconds())
                .sum();
            if dur <= budget {
                let score: f64 = items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, c)| c.score)
                    .sum();
                best = best.max(score);
            }
        }
        assert!((dp_score - best).abs() < 1e-9, "dp {dp_score} vs brute {best}");
    }

    #[test]
    fn item_count_cap_respected() {
        let cfg = SchedulerConfig { max_items: 2, ..Default::default() };
        let ranked: Vec<ScoredClip> = (0..10).map(|i| clip(i, 3, 0.5)).collect();
        let sched = cfg.pack(&ranked, &drive(vec![]), TimePoint::at(0, 8, 0, 0));
        assert!(sched.items.len() <= 2);
    }

    #[test]
    fn pinned_item_covers_its_location() {
        let cfg = SchedulerConfig::default();
        // Item pinned at 12 km → ETA 1200 s.
        let ranked = vec![clip(1, 8, 0.9), pinned_clip(2, 6, 0.8, 12_000.0), clip(3, 5, 0.6)];
        let d = drive(vec![]);
        let sched = cfg.pack(&ranked, &d, TimePoint::at(0, 8, 0, 0));
        let pinned = sched.items.iter().find(|i| i.clip == ClipId(2)).expect("pinned scheduled");
        let eta = 1_200u64;
        assert!(
            pinned.start_s <= eta + cfg.pin_tolerance_s
                && pinned.end_s() + cfg.pin_tolerance_s >= eta,
            "pinned item [{}, {}] must cover ETA {eta}",
            pinned.start_s,
            pinned.end_s()
        );
        assert!(sched.is_well_formed());
    }

    #[test]
    fn boundaries_avoid_distraction_zones() {
        // A roundabout zone at 2.4–2.6 km → seconds 240–260.
        let d = drive(vec![zone(2_400.0, 2_600.0)]);
        let cfg = SchedulerConfig::default();
        // A 4-minute clip starting at 0 would end at 240 s — exactly at
        // the zone edge; craft clips so a boundary would land inside.
        let ranked = vec![clip(1, 4, 0.9), clip(2, 4, 0.8), clip(3, 4, 0.7)];
        let sched = cfg.pack(&ranked, &d, TimePoint::at(0, 8, 0, 0));
        let zones = d.zone_windows();
        for item in &sched.items {
            for &(a, b) in &zones {
                assert!(
                    !(item.start_s >= a && item.start_s < b),
                    "start {} inside zone [{a},{b})",
                    item.start_s
                );
                let e = item.end_s();
                assert!(!(e > a && e <= b), "end {e} inside zone [{a},{b})");
            }
        }
        assert!(sched.is_well_formed());
    }

    #[test]
    fn ablation_disabling_distraction_lets_boundaries_in() {
        // Zone 2.35–2.5 km → seconds (235, 250): the 240 s boundary of
        // back-to-back 4-minute items lands inside it.
        let d = drive(vec![zone(2_350.0, 2_500.0)]);
        let on = SchedulerConfig::default();
        let off = SchedulerConfig { avoid_distraction: false, ..Default::default() };
        let ranked: Vec<ScoredClip> = (0..7).map(|i| clip(i, 4, 0.9 - 0.05 * i as f64)).collect();
        let t = TimePoint::at(0, 8, 0, 0);
        let sched_on = on.pack(&ranked, &d, t);
        let sched_off = off.pack(&ranked, &d, t);
        let zones = d.zone_windows();
        let violations = |s: &SlotSchedule| {
            s.items
                .iter()
                .flat_map(|i| [i.start_s, i.end_s()])
                .filter(|&b| zones.iter().any(|&(a, z)| b > a && b < z))
                .count()
        };
        assert_eq!(violations(&sched_on), 0);
        assert!(violations(&sched_off) >= 1, "with 4-min items, 240 s boundary hits the zone");
        // The constraint costs some relevance (or at least never gains).
        assert!(sched_on.total_score <= sched_off.total_score + 1e-9);
    }

    #[test]
    fn very_short_trip_schedules_nothing() {
        let prediction = TripPrediction {
            destination: 1,
            confidence: 0.9,
            total_duration: TimeSpan::minutes(3),
            remaining: TimeSpan::minutes(2),
            route_ahead: vec![ProjectedPoint::new(0.0, 0.0), ProjectedPoint::new(1_200.0, 0.0)],
            complexity: 0.0,
            posterior: vec![(1, 1.0)],
        };
        let d = DriveContext::new(prediction, vec![]);
        let sched =
            SchedulerConfig::default().pack(&[clip(1, 1, 0.9)], &d, TimePoint::at(0, 8, 0, 0));
        assert!(sched.items.is_empty(), "2 min − 2 min reserve = nothing to fill");
    }

    #[test]
    fn overlong_clips_are_skipped() {
        let cfg = SchedulerConfig::default();
        let ranked = vec![clip(1, 45, 1.0), clip(2, 10, 0.4)];
        let sched = cfg.pack(&ranked, &drive(vec![]), TimePoint::at(0, 8, 0, 0));
        let ids: Vec<u64> = sched.items.iter().map(|i| i.clip.0).collect();
        assert_eq!(ids, vec![2], "45-min clip cannot fit a 28-min budget");
    }

    #[test]
    fn empty_candidates_empty_schedule() {
        let sched = SchedulerConfig::default().pack(&[], &drive(vec![]), TimePoint::at(0, 8, 0, 0));
        assert!(sched.items.is_empty());
        assert_eq!(sched.fill_ratio(), 0.0);
    }
}
