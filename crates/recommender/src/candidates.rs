//! Candidate filtering.
//!
//! §1.2: "For each user the recommender filters a candidate set of
//! media items using content-based relevance based on past listener's
//! feedbacks." The filter narrows the repository (thousands of clips)
//! to a scored shortlist: recent clips in categories the listener does
//! not dislike, clips fitting the available time, plus every geo-tagged
//! clip near the route ahead (those may win on context alone — Fig. 2's
//! item B).

use crate::context::ListenerContext;
use crate::score::ScoringWeights;
use pphcr_audio::ClipId;
use pphcr_catalog::{ClipMetadata, ContentRepository};
use pphcr_geo::{TimePoint, TimeSpan};
use pphcr_userdata::PreferenceVector;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A candidate clip with its relevance breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredClip {
    /// The clip.
    pub clip: ClipId,
    /// Clip duration (copied out for the scheduler).
    pub duration: TimeSpan,
    /// Compound relevance score in `[0, 1]`.
    pub score: f64,
    /// Content-based component.
    pub content_score: f64,
    /// Context-based component.
    pub context_score: f64,
    /// Distance from the clip's geo tag to the route ahead, if tagged
    /// and near.
    pub geo_distance_m: Option<f64>,
    /// Along-route position of the tag (meters from the current
    /// position), for geo-pinned scheduling.
    pub along_route_m: Option<f64>,
}

/// Candidate filtering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateFilter {
    /// Ignore clips older than this.
    pub max_age: TimeSpan,
    /// Drop clips whose category preference is below this (strong
    /// dislikes never reach the scheduler).
    pub min_category_pref: f64,
    /// Corridor width for route geo matches, meters.
    pub route_corridor_m: f64,
    /// Keep at most this many candidates (by score).
    pub max_candidates: usize,
}

impl Default for CandidateFilter {
    fn default() -> Self {
        CandidateFilter {
            max_age: TimeSpan::hours(24 * 7),
            min_category_pref: -0.5,
            route_corridor_m: 2_000.0,
            max_candidates: 50,
        }
    }
}

impl CandidateFilter {
    /// Builds the scored candidate list, best first.
    #[must_use]
    pub fn candidates(
        &self,
        repo: &ContentRepository,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
    ) -> Vec<ScoredClip> {
        self.candidates_excluding(repo, prefs, ctx, weights, &HashSet::new())
    }

    /// Like [`Self::candidates`], excluding already-played clips.
    #[must_use]
    pub fn candidates_excluding(
        &self,
        repo: &ContentRepository,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
        exclude: &HashSet<ClipId>,
    ) -> Vec<ScoredClip> {
        let cutoff = ctx.now.rewind(self.max_age);
        // Geo matches along the route ahead (id → (distance, along)).
        let mut geo_hits: std::collections::HashMap<ClipId, (f64, f64)> =
            std::collections::HashMap::new();
        if let Some(drive) = ctx.drive.as_ref() {
            for (meta, along) in repo.geo_along_route(&drive.route_ahead, self.route_corridor_m) {
                let dist = drive
                    .route_ahead
                    .distance_to(repo.projection().project(meta.geo.expect("geo hit").point))
                    .unwrap_or(f64::INFINITY);
                geo_hits.insert(meta.id, (dist, along));
            }
        }
        let mut out: Vec<ScoredClip> = Vec::new();
        for meta in repo.iter() {
            if exclude.contains(&meta.id) {
                continue;
            }
            let is_geo_hit = geo_hits.contains_key(&meta.id);
            if meta.published < cutoff && !is_geo_hit {
                continue;
            }
            if prefs.score(meta.category) < self.min_category_pref && !is_geo_hit {
                continue;
            }
            out.push(self.score_one(meta, prefs, ctx, weights, &geo_hits));
        }
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.clip.cmp(&b.clip)));
        // Truncate by score, but never drop route geo matches: Fig. 2's
        // item B must reach the scheduler even when its compound score
        // is mid-pack — the *scheduler* decides whether it fits.
        if out.len() > self.max_candidates {
            let spared: Vec<ScoredClip> = out
                .split_off(self.max_candidates)
                .into_iter()
                .filter(|c| c.along_route_m.is_some())
                .collect();
            out.extend(spared);
        }
        out
    }

    fn score_one(
        &self,
        meta: &ClipMetadata,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
        geo_hits: &std::collections::HashMap<ClipId, (f64, f64)>,
    ) -> ScoredClip {
        let hit = geo_hits.get(&meta.id).copied();
        let geo_distance_m = hit.map(|(d, _)| d);
        let along_route_m = hit.map(|(_, a)| a);
        let content_score = weights.content_relevance(prefs, meta);
        let context_score = weights.context_relevance(meta, ctx, geo_distance_m);
        let score = weights.compound(prefs, meta, ctx, geo_distance_m);
        ScoredClip {
            clip: meta.id,
            duration: meta.duration,
            score,
            content_score,
            context_score,
            geo_distance_m,
            along_route_m,
        }
    }
}

/// Convenience for tests and benches: the earliest publication instant
/// still inside the filter window at `now`.
#[must_use]
pub fn freshness_cutoff(filter: &CandidateFilter, now: TimePoint) -> TimePoint {
    now.rewind(filter.max_age)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DriveContext;
    use pphcr_catalog::{CategoryId, ClipKind, GeoTag};
    use pphcr_geo::{GeoPoint, LocalProjection, ProjectedPoint};
    use pphcr_trajectory::TripPrediction;
    use pphcr_userdata::{FeedbackEvent, FeedbackKind, FeedbackStore, UserId};

    const TORINO: GeoPoint = GeoPoint { lat: 45.0703, lon: 7.6869 };

    fn meta(id: u64, cat: u16, published: TimePoint, minutes: u64) -> ClipMetadata {
        ClipMetadata {
            id: ClipId(id),
            title: format!("clip {id}"),
            kind: ClipKind::Podcast,
            category: CategoryId::new(cat),
            category_confidence: 1.0,
            duration: TimeSpan::minutes(minutes),
            published,
            geo: None,
            transcript: Vec::new(),
        }
    }

    fn repo() -> ContentRepository {
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        let morning = TimePoint::at(0, 6, 0, 0);
        r.ingest(meta(1, 8, morning, 15)); // wine
        r.ingest(meta(2, 5, morning, 10)); // football
        r.ingest(meta(3, 9, morning, 5)); // technology
        r
    }

    fn prefs(user: u64, likes: &[u16], dislikes: &[u16]) -> PreferenceVector {
        let mut store = FeedbackStore::default();
        let t = TimePoint::at(0, 7, 0, 0);
        for &c in likes {
            for _ in 0..3 {
                store.record(FeedbackEvent {
                    user: UserId(user),
                    clip: None,
                    category: CategoryId::new(c),
                    kind: FeedbackKind::Like,
                    time: t,
                });
            }
        }
        for &c in dislikes {
            for _ in 0..3 {
                store.record(FeedbackEvent {
                    user: UserId(user),
                    clip: None,
                    category: CategoryId::new(c),
                    kind: FeedbackKind::Dislike,
                    time: t,
                });
            }
        }
        store.preferences(UserId(user), t)
    }

    fn ctx() -> ListenerContext {
        ListenerContext::stationary(TimePoint::at(0, 9, 0, 0))
    }

    #[test]
    fn liked_category_ranks_first_disliked_is_dropped() {
        let filter = CandidateFilter::default();
        let weights = ScoringWeights::default();
        let p = prefs(1, &[8], &[5]);
        let cands = filter.candidates(&repo(), &p, &ctx(), &weights);
        assert_eq!(cands[0].clip, ClipId(1), "wine first");
        assert!(
            cands.iter().all(|c| c.clip != ClipId(2)),
            "disliked football filtered out: {cands:?}"
        );
    }

    #[test]
    fn stale_clips_filtered() {
        let mut r = repo();
        r.ingest(meta(9, 8, TimePoint::EPOCH, 5));
        let mut late_ctx = ctx();
        late_ctx.now = TimePoint::at(10, 9, 0, 0); // ten days later
        let filter = CandidateFilter::default();
        let cands = filter.candidates(
            &r,
            &PreferenceVector::neutral(),
            &late_ctx,
            &ScoringWeights::default(),
        );
        assert!(cands.iter().all(|c| c.clip != ClipId(9)));
    }

    #[test]
    fn exclusion_set_respected() {
        let filter = CandidateFilter::default();
        let p = PreferenceVector::neutral();
        let exclude: HashSet<ClipId> = [ClipId(1)].into_iter().collect();
        let cands =
            filter.candidates_excluding(&repo(), &p, &ctx(), &ScoringWeights::default(), &exclude);
        assert!(cands.iter().all(|c| c.clip != ClipId(1)));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn max_candidates_truncates() {
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        for i in 0..100 {
            r.ingest(meta(i, (i % 30) as u16, TimePoint::at(0, 6, 0, 0), 5));
        }
        let filter = CandidateFilter { max_candidates: 10, ..Default::default() };
        let cands =
            filter.candidates(&r, &PreferenceVector::neutral(), &ctx(), &ScoringWeights::default());
        assert_eq!(cands.len(), 10);
    }

    #[test]
    fn scores_sorted_descending() {
        let filter = CandidateFilter::default();
        let p = prefs(1, &[8, 9], &[]);
        let cands = filter.candidates(&repo(), &p, &ctx(), &ScoringWeights::default());
        assert!(cands.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn geo_hit_survives_dislike_and_staleness() {
        let mut r = repo();
        let proj = *r.projection();
        // A disliked-category, stale clip pinned right on the route.
        let mut pinned = meta(42, 5, TimePoint::EPOCH, 4);
        pinned.geo = Some(GeoTag {
            point: proj.unproject(ProjectedPoint::new(5_000.0, 0.0)),
            radius_m: 800.0,
        });
        r.ingest(pinned);
        let prediction = TripPrediction {
            destination: 1,
            confidence: 0.9,
            total_duration: TimeSpan::minutes(20),
            remaining: TimeSpan::minutes(18),
            route_ahead: vec![ProjectedPoint::new(0.0, 0.0), ProjectedPoint::new(10_000.0, 0.0)],
            complexity: 0.5,
            posterior: vec![(1, 1.0)],
        };
        let drive_ctx = ListenerContext {
            now: TimePoint::at(10, 8, 0, 0), // clip is 10 days old
            position: Some(ProjectedPoint::new(0.0, 0.0)),
            speed_mps: 10.0,
            drive: Some(DriveContext::new(prediction, vec![])),
            ambient: Default::default(),
        };
        let p = prefs(1, &[], &[5]);
        let cands =
            CandidateFilter::default().candidates(&r, &p, &drive_ctx, &ScoringWeights::default());
        let hit = cands.iter().find(|c| c.clip == ClipId(42));
        let hit = hit.expect("geo-pinned clip must remain a candidate");
        assert!(hit.along_route_m.is_some());
        assert!((hit.along_route_m.unwrap() - 5_000.0).abs() < 10.0);
        assert!(hit.geo_distance_m.unwrap() < 10.0);
    }
}
