//! Candidate filtering.
//!
//! §1.2: "For each user the recommender filters a candidate set of
//! media items using content-based relevance based on past listener's
//! feedbacks." The filter narrows the repository (thousands of clips)
//! to a scored shortlist: recent clips in categories the listener does
//! not dislike, clips fitting the available time, plus every geo-tagged
//! clip near the route ahead (those may win on context alone — Fig. 2's
//! item B).
//!
//! Two retrieval paths produce the same shortlist:
//!
//! * [`CandidateFilter::candidates_excluding`] — the reference linear
//!   scan over every clip in the repository;
//! * [`CandidateFilter::candidates_indexed_excluding`] — index-backed
//!   retrieval over the repository's per-category posting lists
//!   (freshness cutoff by binary search) unioned with grid-bucketed
//!   route geo hits, then scoring only that set.
//!
//! The two are differentially tested to be bit-identical: both apply
//! the same inclusion predicate, the same [`score_one`] arithmetic and
//! the same total-order sort, so the only difference is how the
//! candidate set is *found*.

use crate::context::ListenerContext;
use crate::score::ScoringWeights;
use pphcr_audio::ClipId;
use pphcr_catalog::{ClipMetadata, ContentRepository};
use pphcr_geo::{TimePoint, TimeSpan};
use pphcr_userdata::PreferenceVector;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Maps a raw compound score into the ranking domain: NaN collapses to
/// zero, everything else clamps into `[0, 1]`. Ranking runs on
/// `total_cmp`, and a NaN entering it would sort *above* every real
/// score (positive NaN is `total_cmp`'s maximum), silently promoting a
/// broken candidate to the top — so reject it at the boundary instead.
#[must_use]
pub fn sanitize_score(score: f64) -> f64 {
    if score.is_nan() {
        0.0
    } else {
        score.clamp(0.0, 1.0)
    }
}

/// Stage counters from one retrieval: how many catalog entries were
/// looked at and why the rest never reached scoring. The engine copies
/// these into its decision trace.
///
/// The counts are *path diagnostics*, deterministic for a given
/// retrieval path but attributed differently between them: the linear
/// scan tests every clip against the predicate in order
/// (freshness before preference), while the indexed path cuts
/// structurally — a skipped category charges its whole posting list to
/// `cut_preference`, and a posting list's stale prefix is charged to
/// `cut_freshness` without visiting the clips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrievalStats {
    /// Clips the retrieval stage examined individually.
    pub considered: u64,
    /// Clips cut by the freshness window (and not rescued by geo).
    pub cut_freshness: u64,
    /// Clips cut by the category-preference floor (and not rescued by
    /// geo).
    pub cut_preference: u64,
    /// Geo-tagged clips inside the corridor whose tag could not be
    /// placed on the route (missing tag or non-finite projection).
    pub cut_geo: u64,
    /// Clips cut because the exclusion (heard) set already held them.
    pub cut_heard: u64,
    /// Route geo matches that entered (or stayed in) the candidate set
    /// on geographic relevance alone.
    pub geo_hits: u64,
    /// Candidates that reached the scoring stage.
    pub scored: u64,
    /// Scored candidates dropped by the `max_candidates` cap.
    pub truncated: u64,
}

/// A candidate clip with its relevance breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredClip {
    /// The clip.
    pub clip: ClipId,
    /// Clip duration (copied out for the scheduler).
    pub duration: TimeSpan,
    /// Compound relevance score in `[0, 1]`.
    pub score: f64,
    /// Content-based component.
    pub content_score: f64,
    /// Context-based component.
    pub context_score: f64,
    /// Distance from the clip's geo tag to the route ahead, if tagged
    /// and near.
    pub geo_distance_m: Option<f64>,
    /// Along-route position of the tag (meters from the current
    /// position), for geo-pinned scheduling.
    pub along_route_m: Option<f64>,
}

impl ScoredClip {
    /// Builds a scored candidate, guarding the ranking invariant at the
    /// constructor: the compound score must not be NaN (debug builds
    /// assert; release builds sanitize into `[0, 1]`).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        clip: ClipId,
        duration: TimeSpan,
        score: f64,
        content_score: f64,
        context_score: f64,
        geo_distance_m: Option<f64>,
        along_route_m: Option<f64>,
    ) -> Self {
        debug_assert!(!score.is_nan(), "NaN compound score for {clip:?}");
        ScoredClip {
            clip,
            duration,
            score: sanitize_score(score),
            content_score,
            context_score,
            geo_distance_m,
            along_route_m,
        }
    }
}

/// Candidate filtering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateFilter {
    /// Ignore clips older than this.
    pub max_age: TimeSpan,
    /// Drop clips whose category preference is below this (strong
    /// dislikes never reach the scheduler).
    pub min_category_pref: f64,
    /// Corridor width for route geo matches, meters.
    pub route_corridor_m: f64,
    /// Keep at most this many candidates (by score).
    pub max_candidates: usize,
    /// Catalog size below which the indexed entry points fall back to
    /// the linear scan. The index only pays off once posting-list
    /// pruning skips enough clips to beat the scan's branch-predictable
    /// sweep — measured at ~0.97x (a net loss) on a 1k-clip catalog —
    /// so small repositories take the scan path; the shortlist is
    /// differentially tested identical either way. `0` disables the
    /// fallback.
    #[serde(default = "default_scan_below")]
    pub scan_below: usize,
}

/// Serde default for [`CandidateFilter::scan_below`] so filters
/// serialized before the field existed keep deserializing.
fn default_scan_below() -> usize {
    2_000
}

/// Which retrieval walk the indexed entry points will actually run for
/// a given repository size — the production dispatch decision, exposed
/// so benchmarks report what they measured instead of guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalPath {
    /// Below [`CandidateFilter::scan_below`]: the linear scan.
    Scan,
    /// At or above the threshold: the posting-list index walk.
    Index,
}

impl RetrievalPath {
    /// Stable label used in experiment tables and JSON artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RetrievalPath::Scan => "scan-fallback",
            RetrievalPath::Index => "index",
        }
    }
}

impl std::fmt::Display for RetrievalPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Default for CandidateFilter {
    fn default() -> Self {
        CandidateFilter {
            max_age: TimeSpan::hours(24 * 7),
            min_category_pref: -0.5,
            route_corridor_m: 2_000.0,
            max_candidates: 50,
            scan_below: default_scan_below(),
        }
    }
}

impl CandidateFilter {
    /// Builds the scored candidate list, best first.
    #[must_use]
    pub fn candidates(
        &self,
        repo: &ContentRepository,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
    ) -> Vec<ScoredClip> {
        self.candidates_excluding(repo, prefs, ctx, weights, &HashSet::new())
    }

    /// Like [`Self::candidates`], excluding already-played clips.
    /// Reference linear scan: every clip in the repository is tested
    /// against the inclusion predicate.
    #[must_use]
    pub fn candidates_excluding(
        &self,
        repo: &ContentRepository,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
        exclude: &HashSet<ClipId>,
    ) -> Vec<ScoredClip> {
        self.candidates_excluding_stats(repo, prefs, ctx, weights, exclude).0
    }

    /// [`Self::candidates_excluding`] plus the per-stage
    /// [`RetrievalStats`] of the scan.
    #[must_use]
    pub fn candidates_excluding_stats(
        &self,
        repo: &ContentRepository,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
        exclude: &HashSet<ClipId>,
    ) -> (Vec<ScoredClip>, RetrievalStats) {
        let mut stats = RetrievalStats::default();
        let cutoff = ctx.now.rewind(self.max_age);
        let geo_hits = self.geo_hits_for(repo, ctx, &mut stats);
        let mut out: Vec<ScoredClip> = Vec::new();
        for meta in repo.iter() {
            stats.considered += 1;
            if exclude.contains(&meta.id) {
                stats.cut_heard += 1;
                continue;
            }
            let is_geo_hit = geo_hits.contains_key(&meta.id);
            if meta.published < cutoff && !is_geo_hit {
                stats.cut_freshness += 1;
                continue;
            }
            if prefs.score(meta.category) < self.min_category_pref && !is_geo_hit {
                stats.cut_preference += 1;
                continue;
            }
            out.push(self.score_one(meta, prefs, ctx, weights, &geo_hits));
        }
        (self.finalize(out, &mut stats), stats)
    }

    /// Index-backed retrieval: the same shortlist as
    /// [`Self::candidates_excluding`], found without scanning the
    /// repository. Candidates are the union of (a) posting-list
    /// suffixes (binary-searched freshness cutoff) of every category
    /// whose preference clears the threshold, and (b) grid-bucketed
    /// geo hits along the route ahead. Only that set is scored.
    #[must_use]
    pub fn candidates_indexed(
        &self,
        repo: &ContentRepository,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
    ) -> Vec<ScoredClip> {
        self.candidates_indexed_excluding(repo, prefs, ctx, weights, &HashSet::new())
    }

    /// Like [`Self::candidates_indexed`], excluding already-played
    /// clips.
    #[must_use]
    pub fn candidates_indexed_excluding(
        &self,
        repo: &ContentRepository,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
        exclude: &HashSet<ClipId>,
    ) -> Vec<ScoredClip> {
        self.candidates_indexed_excluding_stats(repo, prefs, ctx, weights, exclude).0
    }

    /// The walk [`Self::candidates_indexed_excluding_stats`] will run
    /// for a repository of `repo_len` clips. The dispatch below routes
    /// through this predicate, so callers that report it (e.g. the e13
    /// retrieval bench) cannot drift from what actually executed.
    #[must_use]
    pub fn retrieval_path(&self, repo_len: usize) -> RetrievalPath {
        if repo_len < self.scan_below {
            RetrievalPath::Scan
        } else {
            RetrievalPath::Index
        }
    }

    /// [`Self::candidates_indexed_excluding`] plus the per-stage
    /// [`RetrievalStats`] of the index walk. Freshness and preference
    /// cuts are counted structurally from posting-list lengths, so the
    /// stats cost O(categories) on top of the clips actually visited.
    ///
    /// Below [`Self::scan_below`] clips the call delegates to the
    /// linear scan, which is faster there; the shortlist is identical,
    /// though the per-stage stats reflect whichever walk actually ran.
    #[must_use]
    pub fn candidates_indexed_excluding_stats(
        &self,
        repo: &ContentRepository,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
        exclude: &HashSet<ClipId>,
    ) -> (Vec<ScoredClip>, RetrievalStats) {
        if self.retrieval_path(repo.len()) == RetrievalPath::Scan {
            return self.candidates_excluding_stats(repo, prefs, ctx, weights, exclude);
        }
        let mut stats = RetrievalStats::default();
        let cutoff = ctx.now.rewind(self.max_age);
        let geo_hits = self.geo_hits_for(repo, ctx, &mut stats);
        let mut out: Vec<ScoredClip> = Vec::new();
        let mut seen: HashSet<ClipId> = HashSet::new();
        for category in repo.indexed_categories().collect::<Vec<_>>() {
            let posted = repo.category_len(category) as u64;
            if prefs.score(category) < self.min_category_pref {
                stats.cut_preference += posted;
                continue;
            }
            let mut fresh = 0u64;
            for meta in repo.fresh_in_category(category, cutoff) {
                fresh += 1;
                stats.considered += 1;
                if exclude.contains(&meta.id) {
                    stats.cut_heard += 1;
                    continue;
                }
                seen.insert(meta.id);
                out.push(self.score_one(meta, prefs, ctx, weights, &geo_hits));
            }
            stats.cut_freshness += posted - fresh;
        }
        // Geo hits ride along regardless of freshness or preference;
        // skip the ones the category pass already scored.
        // lint: allow(hash-iter) — finalize() re-sorts by (score desc, clip id); visit order cannot reach the output
        for &id in geo_hits.keys() {
            if seen.contains(&id) {
                continue;
            }
            stats.considered += 1;
            if exclude.contains(&id) {
                stats.cut_heard += 1;
                continue;
            }
            let Some(meta) = repo.get(id) else { continue };
            out.push(self.score_one(meta, prefs, ctx, weights, &geo_hits));
        }
        (self.finalize(out, &mut stats), stats)
    }

    /// Route geo matches for the drive ahead (id → (distance, along)).
    /// A tag whose projection onto the route is missing or non-finite
    /// cannot be placed on the drive, so it is *not* a geo hit — the
    /// clip falls back to the ordinary freshness/preference predicate
    /// instead of carrying an infinite distance into scoring.
    fn geo_hits_for(
        &self,
        repo: &ContentRepository,
        ctx: &ListenerContext,
        stats: &mut RetrievalStats,
    ) -> HashMap<ClipId, (f64, f64)> {
        let mut geo_hits = HashMap::new();
        let Some(drive) = ctx.drive.as_ref() else { return geo_hits };
        for (meta, along) in repo.geo_along_route(&drive.route_ahead, self.route_corridor_m) {
            let Some(tag) = meta.geo else {
                stats.cut_geo += 1;
                continue;
            };
            match drive.route_ahead.distance_to(repo.projection().project(tag.point)) {
                Some(dist) if dist.is_finite() && along.is_finite() => {
                    geo_hits.insert(meta.id, (dist, along));
                }
                _ => stats.cut_geo += 1,
            }
        }
        stats.geo_hits = geo_hits.len() as u64;
        geo_hits
    }

    /// Sorts best-first, truncates to `max_candidates`, then re-merges
    /// geo hits spared from truncation back into descending-score
    /// order. Route geo matches are never dropped (Fig. 2's item B must
    /// reach the scheduler even when its compound score is mid-pack —
    /// the *scheduler* decides whether it fits), but they must not
    /// break the "best first" contract either: callers such as the
    /// engine's skip path take a prefix of this list directly.
    fn finalize(&self, mut out: Vec<ScoredClip>, stats: &mut RetrievalStats) -> Vec<ScoredClip> {
        stats.scored = out.len() as u64;
        let by_score_desc =
            |a: &ScoredClip, b: &ScoredClip| b.score.total_cmp(&a.score).then(a.clip.cmp(&b.clip));
        out.sort_by(by_score_desc);
        if out.len() > self.max_candidates {
            let spared: Vec<ScoredClip> = out
                .split_off(self.max_candidates)
                .into_iter()
                .filter(|c| c.along_route_m.is_some())
                .collect();
            if !spared.is_empty() {
                out.extend(spared);
                out.sort_by(by_score_desc);
            }
        }
        stats.truncated = stats.scored - out.len() as u64;
        out
    }

    fn score_one(
        &self,
        meta: &ClipMetadata,
        prefs: &PreferenceVector,
        ctx: &ListenerContext,
        weights: &ScoringWeights,
        geo_hits: &HashMap<ClipId, (f64, f64)>,
    ) -> ScoredClip {
        let hit = geo_hits.get(&meta.id).copied();
        let geo_distance_m = hit.map(|(d, _)| d);
        let along_route_m = hit.map(|(_, a)| a);
        let content_score = weights.content_relevance(prefs, meta);
        let context_score = weights.context_relevance(meta, ctx, geo_distance_m);
        let score = weights.compound(prefs, meta, ctx, geo_distance_m);
        ScoredClip::new(
            meta.id,
            meta.duration,
            score,
            content_score,
            context_score,
            geo_distance_m,
            along_route_m,
        )
    }
}

/// Convenience for tests and benches: the earliest publication instant
/// still inside the filter window at `now`.
#[must_use]
pub fn freshness_cutoff(filter: &CandidateFilter, now: TimePoint) -> TimePoint {
    now.rewind(filter.max_age)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Ambient, DriveContext};
    use pphcr_catalog::{CategoryId, ClipKind, GeoTag};
    use pphcr_geo::{GeoPoint, LocalProjection, ProjectedPoint};
    use pphcr_trajectory::TripPrediction;
    use pphcr_userdata::{FeedbackEvent, FeedbackKind, FeedbackStore, UserId};

    const TORINO: GeoPoint = GeoPoint { lat: 45.0703, lon: 7.6869 };

    fn meta(id: u64, cat: u16, published: TimePoint, minutes: u64) -> ClipMetadata {
        ClipMetadata {
            id: ClipId(id),
            title: format!("clip {id}"),
            kind: ClipKind::Podcast,
            category: CategoryId::new(cat),
            category_confidence: 1.0,
            duration: TimeSpan::minutes(minutes),
            published,
            geo: None,
            transcript: Vec::new(),
        }
    }

    fn repo() -> ContentRepository {
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        let morning = TimePoint::at(0, 6, 0, 0);
        r.ingest(meta(1, 8, morning, 15)); // wine
        r.ingest(meta(2, 5, morning, 10)); // football
        r.ingest(meta(3, 9, morning, 5)); // technology
        r
    }

    fn prefs(user: u64, likes: &[u16], dislikes: &[u16]) -> PreferenceVector {
        let mut store = FeedbackStore::default();
        let t = TimePoint::at(0, 7, 0, 0);
        for &c in likes {
            for _ in 0..3 {
                store.record(FeedbackEvent {
                    user: UserId(user),
                    clip: None,
                    category: CategoryId::new(c),
                    kind: FeedbackKind::Like,
                    time: t,
                });
            }
        }
        for &c in dislikes {
            for _ in 0..3 {
                store.record(FeedbackEvent {
                    user: UserId(user),
                    clip: None,
                    category: CategoryId::new(c),
                    kind: FeedbackKind::Dislike,
                    time: t,
                });
            }
        }
        store.preferences(UserId(user), t)
    }

    fn ctx() -> ListenerContext {
        ListenerContext::stationary(TimePoint::at(0, 9, 0, 0))
    }

    fn driving_ctx(now: TimePoint) -> ListenerContext {
        let prediction = TripPrediction {
            destination: 1,
            confidence: 0.9,
            total_duration: TimeSpan::minutes(20),
            remaining: TimeSpan::minutes(18),
            route_ahead: vec![ProjectedPoint::new(0.0, 0.0), ProjectedPoint::new(10_000.0, 0.0)],
            complexity: 0.5,
            posterior: vec![(1, 1.0)],
        };
        ListenerContext {
            now,
            position: Some(ProjectedPoint::new(0.0, 0.0)),
            speed_mps: 10.0,
            drive: Some(DriveContext::new(prediction, vec![])),
            ambient: Ambient::default(),
        }
    }

    #[test]
    fn liked_category_ranks_first_disliked_is_dropped() {
        let filter = CandidateFilter::default();
        let weights = ScoringWeights::default();
        let p = prefs(1, &[8], &[5]);
        let cands = filter.candidates(&repo(), &p, &ctx(), &weights);
        assert_eq!(cands[0].clip, ClipId(1), "wine first");
        assert!(
            cands.iter().all(|c| c.clip != ClipId(2)),
            "disliked football filtered out: {cands:?}"
        );
    }

    #[test]
    fn stale_clips_filtered() {
        let mut r = repo();
        r.ingest(meta(9, 8, TimePoint::EPOCH, 5));
        let mut late_ctx = ctx();
        late_ctx.now = TimePoint::at(10, 9, 0, 0); // ten days later
        let filter = CandidateFilter::default();
        let cands = filter.candidates(
            &r,
            &PreferenceVector::neutral(),
            &late_ctx,
            &ScoringWeights::default(),
        );
        assert!(cands.iter().all(|c| c.clip != ClipId(9)));
    }

    #[test]
    fn exclusion_set_respected() {
        let filter = CandidateFilter::default();
        let p = PreferenceVector::neutral();
        let exclude: HashSet<ClipId> = [ClipId(1)].into_iter().collect();
        let cands =
            filter.candidates_excluding(&repo(), &p, &ctx(), &ScoringWeights::default(), &exclude);
        assert!(cands.iter().all(|c| c.clip != ClipId(1)));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn max_candidates_truncates() {
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        for i in 0..100 {
            r.ingest(meta(i, (i % 30) as u16, TimePoint::at(0, 6, 0, 0), 5));
        }
        let filter = CandidateFilter { max_candidates: 10, ..Default::default() };
        let cands =
            filter.candidates(&r, &PreferenceVector::neutral(), &ctx(), &ScoringWeights::default());
        assert_eq!(cands.len(), 10);
    }

    #[test]
    fn scores_sorted_descending() {
        let filter = CandidateFilter::default();
        let p = prefs(1, &[8, 9], &[]);
        let cands = filter.candidates(&repo(), &p, &ctx(), &ScoringWeights::default());
        assert!(cands.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn geo_hit_survives_dislike_and_staleness() {
        let mut r = repo();
        let proj = *r.projection();
        // A disliked-category, stale clip pinned right on the route.
        let mut pinned = meta(42, 5, TimePoint::EPOCH, 4);
        pinned.geo = Some(GeoTag {
            point: proj.unproject(ProjectedPoint::new(5_000.0, 0.0)),
            radius_m: 800.0,
        });
        r.ingest(pinned);
        let drive_ctx = driving_ctx(TimePoint::at(10, 8, 0, 0)); // clip is 10 days old
        let p = prefs(1, &[], &[5]);
        let cands =
            CandidateFilter::default().candidates(&r, &p, &drive_ctx, &ScoringWeights::default());
        let hit = cands.iter().find(|c| c.clip == ClipId(42));
        let hit = hit.expect("geo-pinned clip must remain a candidate");
        assert!(hit.along_route_m.is_some());
        assert!((hit.along_route_m.unwrap() - 5_000.0).abs() < 10.0);
        assert!(hit.geo_distance_m.unwrap() < 10.0);
    }

    #[test]
    fn spared_geo_hits_stay_in_score_order() {
        // Regression: geo hits spared from truncation must be merged
        // back in descending-score order, not tacked on however they
        // came — callers take a prefix of this list directly.
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        let proj = *r.projection();
        let drive_ctx = driving_ctx(TimePoint::at(10, 8, 0, 0));
        for i in 0..40 {
            // Fresh clips in liked categories: these fill the cut.
            r.ingest(meta(i, (i % 4) as u16, drive_ctx.now.rewind(TimeSpan::hours(2)), 5));
        }
        // Two stale, disliked, far-off-corridor geo-pinned clips:
        // below the cut on score, spared for being near the route.
        for (id, along) in [(100u64, 3_000.0), (101u64, 7_000.0)] {
            let mut pinned = meta(id, 5, TimePoint::EPOCH, 4);
            pinned.geo = Some(GeoTag {
                point: proj.unproject(ProjectedPoint::new(along, 1_900.0)),
                radius_m: 500.0,
            });
            r.ingest(pinned);
        }
        let filter = CandidateFilter { max_candidates: 10, ..Default::default() };
        let p = prefs(1, &[0, 1, 2, 3], &[5]);
        let cands = filter.candidates(&r, &p, &drive_ctx, &ScoringWeights::default());
        assert!(cands.len() > filter.max_candidates, "geo hits spared");
        for id in [100u64, 101] {
            assert!(cands.iter().any(|c| c.clip == ClipId(id)), "spared {id}");
        }
        assert!(
            cands.windows(2).all(|w| w[0].score >= w[1].score),
            "best-first broken: {:?}",
            cands.iter().map(|c| (c.clip, c.score)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tag_past_route_end_scores_finite() {
        // Regression: a tag beyond the end of the route projects onto
        // the final vertex; its distance must stay finite and must not
        // poison the compound score with infinities.
        let mut r = ContentRepository::new(LocalProjection::new(TORINO));
        let proj = *r.projection();
        let mut past_end = meta(7, 5, TimePoint::EPOCH, 4);
        past_end.geo = Some(GeoTag {
            point: proj.unproject(ProjectedPoint::new(10_400.0, 0.0)),
            radius_m: 800.0,
        });
        r.ingest(past_end);
        let drive_ctx = driving_ctx(TimePoint::at(10, 8, 0, 0));
        let cands = CandidateFilter::default().candidates(
            &r,
            &PreferenceVector::neutral(),
            &drive_ctx,
            &ScoringWeights::default(),
        );
        let hit = cands.iter().find(|c| c.clip == ClipId(7)).expect("tag in corridor");
        let dist = hit.geo_distance_m.expect("still a geo hit");
        assert!(dist.is_finite(), "distance must be finite, got {dist}");
        assert!((dist - 400.0).abs() < 10.0, "clamped to route end");
        assert!((hit.along_route_m.unwrap() - 10_000.0).abs() < 10.0);
        assert!(hit.score.is_finite() && (0.0..=1.0).contains(&hit.score));
    }

    #[test]
    fn sanitize_score_rejects_nan_and_clamps() {
        assert_eq!(sanitize_score(f64::NAN), 0.0);
        assert_eq!(sanitize_score(f64::INFINITY), 1.0);
        assert_eq!(sanitize_score(f64::NEG_INFINITY), 0.0);
        assert_eq!(sanitize_score(-0.25), 0.0);
        assert_eq!(sanitize_score(1.75), 1.0);
        assert_eq!(sanitize_score(0.42), 0.42);
    }

    #[test]
    fn stats_account_for_every_cut() {
        let mut r = repo();
        r.ingest(meta(9, 8, TimePoint::EPOCH, 5)); // stale wine clip
        let mut late_ctx = ctx();
        late_ctx.now = TimePoint::at(10, 9, 0, 0);
        // Force the index path: the fixture sits far below the default
        // scan-fallback threshold.
        let filter = CandidateFilter { scan_below: 0, ..CandidateFilter::default() };
        let weights = ScoringWeights::default();
        let p = prefs(1, &[8], &[5]);
        let exclude: HashSet<ClipId> = [ClipId(3)].into_iter().collect();
        let (scan, scan_stats) =
            filter.candidates_excluding_stats(&r, &p, &late_ctx, &weights, &exclude);
        // Four clips total: 1 survives (wine #1... also stale!), so
        // derive expectations from the scan semantics directly.
        assert_eq!(scan_stats.considered, 4, "scan examines the whole repo");
        assert_eq!(scan_stats.cut_heard, 1, "clip 3 excluded");
        assert_eq!(
            scan_stats.cut_freshness + scan_stats.cut_preference + scan_stats.scored,
            3,
            "remaining clips are cut or scored: {scan_stats:?}"
        );
        assert_eq!(scan.len() as u64, scan_stats.scored - scan_stats.truncated);

        let (indexed, indexed_stats) =
            filter.candidates_indexed_excluding_stats(&r, &p, &late_ctx, &weights, &exclude);
        assert_eq!(scan, indexed, "stats ride along without changing the shortlist");
        assert_eq!(indexed_stats.scored, scan_stats.scored);
        assert_eq!(indexed_stats.truncated, scan_stats.truncated);
        assert!(
            indexed_stats.considered <= scan_stats.considered,
            "index visits no more clips than the scan"
        );
    }

    #[test]
    fn indexed_retrieval_matches_scan_on_fixture() {
        let mut r = repo();
        let proj = *r.projection();
        let mut pinned = meta(42, 5, TimePoint::EPOCH, 4);
        pinned.geo = Some(GeoTag {
            point: proj.unproject(ProjectedPoint::new(5_000.0, 0.0)),
            radius_m: 800.0,
        });
        r.ingest(pinned);
        // Force the index path: the fixture sits far below the default
        // scan-fallback threshold.
        let filter = CandidateFilter { scan_below: 0, ..CandidateFilter::default() };
        let weights = ScoringWeights::default();
        let p = prefs(1, &[8], &[5]);
        let exclude: HashSet<ClipId> = [ClipId(3)].into_iter().collect();
        for c in [ctx(), driving_ctx(TimePoint::at(10, 8, 0, 0))] {
            let scan = filter.candidates_excluding(&r, &p, &c, &weights, &exclude);
            let indexed = filter.candidates_indexed_excluding(&r, &p, &c, &weights, &exclude);
            assert_eq!(scan, indexed);
        }
    }

    #[test]
    fn scan_fallback_engages_below_threshold_with_identical_shortlist() {
        let mut r = repo();
        let proj = *r.projection();
        let mut pinned = meta(42, 5, TimePoint::EPOCH, 4);
        pinned.geo = Some(GeoTag {
            point: proj.unproject(ProjectedPoint::new(5_000.0, 0.0)),
            radius_m: 800.0,
        });
        r.ingest(pinned);
        let weights = ScoringWeights::default();
        let p = prefs(1, &[8], &[5]);
        let exclude: HashSet<ClipId> = [ClipId(3)].into_iter().collect();
        let falling_back = CandidateFilter::default();
        assert!(r.len() < falling_back.scan_below, "fixture must sit below the default crossover");
        let indexed_only = CandidateFilter { scan_below: 0, ..falling_back };
        for c in [ctx(), driving_ctx(TimePoint::at(10, 8, 0, 0))] {
            // The fallback's stats are scan stats (whole repo
            // considered), proving the scan path actually ran…
            let (via_fallback, fb_stats) =
                falling_back.candidates_indexed_excluding_stats(&r, &p, &c, &weights, &exclude);
            let (via_scan, scan_stats) =
                falling_back.candidates_excluding_stats(&r, &p, &c, &weights, &exclude);
            assert_eq!(fb_stats, scan_stats, "fallback must report the scan's stats");
            assert_eq!(fb_stats.considered, r.len() as u64, "scan examines the whole repo");
            // …while the shortlist stays identical to the index walk's.
            let via_index =
                indexed_only.candidates_indexed_excluding(&r, &p, &c, &weights, &exclude);
            assert_eq!(via_fallback, via_scan);
            assert_eq!(via_fallback, via_index);
        }
    }

    #[test]
    fn retrieval_path_predicate_matches_the_walk_that_runs() {
        let r = repo();
        let weights = ScoringWeights::default();
        let p = prefs(1, &[8], &[5]);
        let exclude = HashSet::new();
        // Boundary semantics: strictly-below falls back, at-threshold indexes.
        let at_threshold = CandidateFilter { scan_below: r.len(), ..CandidateFilter::default() };
        assert_eq!(at_threshold.retrieval_path(r.len()), RetrievalPath::Index);
        assert_eq!(at_threshold.retrieval_path(r.len() - 1), RetrievalPath::Scan);
        assert_eq!(RetrievalPath::Scan.label(), "scan-fallback");
        assert_eq!(RetrievalPath::Index.to_string(), "index");
        // The predicate describes the walk that actually executes: a
        // scan considers every clip in the repo, the index walk skips
        // whole categories cut by preference and so considers fewer.
        for scan_below in [0, r.len(), r.len() + 1] {
            let filter = CandidateFilter { scan_below, ..CandidateFilter::default() };
            let (_, stats) =
                filter.candidates_indexed_excluding_stats(&r, &p, &ctx(), &weights, &exclude);
            match filter.retrieval_path(r.len()) {
                RetrievalPath::Scan => {
                    assert_eq!(stats.considered, r.len() as u64);
                }
                RetrievalPath::Index => {
                    assert!(stats.considered < r.len() as u64);
                    assert!(stats.cut_preference > 0);
                }
            }
        }
    }
}
