//! The context-aware proactive recommender — the paper's core
//! contribution.
//!
//! Paper §1.2: *"For each user the recommender filters a candidate set
//! of media items using content-based relevance based on past
//! listener's feedbacks. Then a compound relevance score is calculated
//! through weighted combination of the content-based relevance and the
//! context-based relevance (location, trajectory, speed and time
//! information). The recommender system then uses this score to
//! identify the recommendation set of content to be delivered to the
//! listener according to a relevance objective function and temporal
//! scheduling and presentation constraints, taking into account driving
//! conditions as well as driver's projected distraction levels at
//! intersections and roundabouts at user's projected driving path."*
//!
//! Module map (each sentence above → one module):
//!
//! * [`context`] — the listener context handed to the recommender,
//! * [`score`] — content-based, context-based and compound relevance,
//! * [`candidates`] — candidate filtering from the repository,
//! * [`scheduler`] — the ΔT slot scheduler (relevance-maximizing
//!   selection under temporal and distraction constraints, Fig. 2),
//! * [`proactive`] — the two-phase proactivity model (decide *when*,
//!   then *what*),
//! * [`baselines`] — popularity / content-only / random baselines used
//!   by the evaluation harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod candidates;
pub mod context;
pub mod ensemble;
pub mod proactive;
pub mod scheduler;
pub mod score;

pub use candidates::{sanitize_score, CandidateFilter, RetrievalPath, RetrievalStats, ScoredClip};
pub use context::{Activity, Ambient, DriveContext, ListenerContext, Weather};
pub use ensemble::{category_entropy, diversify, ensemble_similarity};
pub use proactive::{ProactivityModel, Trigger};
pub use scheduler::{ScheduledItem, SchedulerConfig, SlotSchedule};
pub use score::ScoringWeights;

use pphcr_catalog::ContentRepository;
use pphcr_userdata::{FeedbackStore, UserId};

/// The full recommender pipeline: filter → score → schedule.
#[derive(Debug, Clone, Default)]
pub struct Recommender {
    /// Relevance weights.
    pub weights: ScoringWeights,
    /// Candidate filtering parameters.
    pub filter: CandidateFilter,
    /// Slot scheduling parameters.
    pub scheduler: SchedulerConfig,
}

impl Recommender {
    /// Ranks candidate clips for a listener in context (no scheduling).
    /// Returns clips sorted by descending compound score.
    #[must_use]
    pub fn rank(
        &self,
        repo: &ContentRepository,
        feedback: &FeedbackStore,
        user: UserId,
        ctx: &ListenerContext,
    ) -> Vec<ScoredClip> {
        let prefs = feedback.preferences(user, ctx.now);
        self.filter.candidates(repo, &prefs, ctx, &self.weights)
    }

    /// The full proactive pipeline for a driving listener: rank, then
    /// pack the predicted ΔT with the relevance-maximizing schedule
    /// (Fig. 2). Returns `None` when there is nothing to schedule.
    #[must_use]
    pub fn recommend_for_trip(
        &self,
        repo: &ContentRepository,
        feedback: &FeedbackStore,
        user: UserId,
        ctx: &ListenerContext,
    ) -> Option<SlotSchedule> {
        let drive = ctx.drive.as_ref()?;
        let ranked = self.rank(repo, feedback, user, ctx);
        if ranked.is_empty() {
            return None;
        }
        let schedule = self.scheduler.pack(&ranked, drive, ctx.now);
        (!schedule.items.is_empty()).then_some(schedule)
    }
}
