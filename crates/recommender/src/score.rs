//! Content-based, context-based and compound relevance.
//!
//! The compound score is the weighted combination named in §1.2:
//!
//! ```text
//! S(clip) = w_c · S_content(clip, prefs) + (1 − w_c) · S_context(clip, ctx)
//! ```
//!
//! `S_content` comes from the listener's decayed per-category
//! preferences; `S_context` mixes geographic proximity to the route
//! ahead, freshness, time-of-day affinity and a complexity/duration fit
//! (short, light items while threading a dense urban route). All
//! components live in `[0, 1]`, so the compound score does too and
//! weight sweeps (experiment E9) are interpretable.

use crate::context::ListenerContext;
use pphcr_catalog::{CategoryId, ClipKind, ClipMetadata};
use pphcr_geo::TimeSpan;
use pphcr_userdata::PreferenceVector;
use serde::{Deserialize, Serialize};

/// Weights of the compound relevance score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoringWeights {
    /// Weight of content-based relevance (`w_c`); context gets `1 − w_c`.
    pub content_weight: f64,
    /// Within the context score: weight of geographic relevance.
    pub geo_weight: f64,
    /// Within the context score: weight of freshness.
    pub freshness_weight: f64,
    /// Within the context score: weight of the time-of-day affinity.
    pub time_weight: f64,
    /// Within the context score: weight of the complexity/duration fit.
    pub fit_weight: f64,
    /// Within the context score: weight of the weather affinity.
    pub weather_weight: f64,
    /// Freshness half-life.
    pub freshness_half_life: TimeSpan,
    /// Distance scale of geographic relevance decay, meters.
    pub geo_scale_m: f64,
}

impl Default for ScoringWeights {
    fn default() -> Self {
        ScoringWeights {
            content_weight: 0.55,
            geo_weight: 0.35,
            freshness_weight: 0.25,
            time_weight: 0.15,
            fit_weight: 0.25,
            weather_weight: 0.1,
            freshness_half_life: TimeSpan::hours(24),
            geo_scale_m: 1_500.0,
        }
    }
}

impl ScoringWeights {
    /// Content-based relevance in `[0, 1]`: the listener's preference
    /// for the clip's category (rescaled from `[-1, 1]`), attenuated by
    /// the classifier's confidence in that category.
    #[must_use]
    pub fn content_relevance(&self, prefs: &PreferenceVector, meta: &ClipMetadata) -> f64 {
        let pref = prefs.score(meta.category); // [-1, 1]
        let neutral = 0.5;
        let conf = meta.category_confidence.clamp(0.0, 1.0);
        // With zero classifier confidence the category tells us nothing:
        // fall back to neutral.
        neutral + (pref / 2.0) * conf
    }

    /// Geographic kernel over a precomputed distance (meters) from the
    /// clip's tag to the route ahead.
    #[must_use]
    pub fn geo_kernel(&self, distance_m: f64) -> f64 {
        (-distance_m.max(0.0) / self.geo_scale_m).exp()
    }

    /// Freshness in `[0, 1]`: exponential decay from publication, with
    /// news decaying at the configured half-life and evergreen kinds
    /// (podcasts, music) at 8× that.
    #[must_use]
    pub fn freshness(&self, meta: &ClipMetadata, ctx: &ListenerContext) -> f64 {
        let hl = match meta.kind {
            ClipKind::NewsBulletin => self.freshness_half_life,
            ClipKind::Advertisement => self.freshness_half_life,
            ClipKind::Podcast | ClipKind::MusicTrack => {
                TimeSpan::seconds(self.freshness_half_life.as_seconds() * 8)
            }
        };
        meta.freshness(ctx.now, hl)
    }

    /// Time-of-day affinity in `[0, 1]`: a small editorial prior (news
    /// and traffic in commute hours, comedy and music in the evening,
    /// neutral otherwise).
    #[must_use]
    pub fn time_affinity(&self, category: CategoryId, hour: u64) -> f64 {
        let commute = matches!(hour, 7..=9 | 17..=19);
        let evening = matches!(hour, 19..=23);
        match category.name() {
            "local-news" | "national-news" | "world-news" | "traffic" | "weather" if commute => 1.0,
            "local-news" | "national-news" | "world-news" | "traffic" | "weather" => 0.5,
            "comedy" | "entertainment" | "music" if evening => 1.0,
            "comedy" | "entertainment" | "music" => 0.6,
            _ => 0.5,
        }
    }

    /// Weather affinity in `[0, 1]`: weather and traffic content is
    /// urgent in adverse conditions; everything else is weather-neutral
    /// (the future-work "richer contexts" hook, §3).
    #[must_use]
    pub fn weather_affinity(&self, category: CategoryId, ctx: &ListenerContext) -> f64 {
        let topical = matches!(category.name(), "weather" | "traffic");
        if topical && ctx.ambient.weather.is_adverse() {
            1.0
        } else {
            0.5
        }
    }

    /// Complexity/duration fit in `[0, 1]`: when the route ahead is
    /// complex (dense urban driving), long clips score low — the paper's
    /// "non-distracting" requirement; on a simple highway run, length is
    /// free. Adverse weather raises the pressure further.
    #[must_use]
    pub fn complexity_fit(&self, meta: &ClipMetadata, ctx: &ListenerContext) -> f64 {
        let Some(drive) = ctx.drive.as_ref() else { return 1.0 };
        let complexity = drive.prediction.complexity.max(0.0);
        // Normalized pressure: 0 on straight routes, →1 on very twisty,
        // scaled up when the weather is bad.
        let pressure = (complexity / 6.0 * ctx.ambient.weather.distraction_multiplier()).min(1.0);
        let minutes = meta.duration.as_minutes_f64();
        // A 3-minute clip is always fine; a 30-minute talk scores ~0.2
        // under full pressure.
        let length_penalty = (minutes / 30.0).min(1.0);
        1.0 - pressure * length_penalty * 0.8
    }

    /// The context-based relevance: weighted mix of the context
    /// components, normalized back to `[0, 1]`.
    ///
    /// `geo_distance_m` is the precomputed distance from the clip's tag
    /// to the route ahead (`None` for untagged clips).
    #[must_use]
    pub fn context_relevance(
        &self,
        meta: &ClipMetadata,
        ctx: &ListenerContext,
        geo_distance_m: Option<f64>,
    ) -> f64 {
        let geo = match geo_distance_m {
            Some(d) => self.geo_kernel(d),
            None => {
                if meta.geo.is_some() {
                    0.1 // tagged but nowhere near the listener's world
                } else {
                    0.5 // untagged content is geographically neutral
                }
            }
        };
        let fresh = self.freshness(meta, ctx);
        let time = self.time_affinity(meta.category, ctx.hour());
        let fit = self.complexity_fit(meta, ctx);
        let weather = self.weather_affinity(meta.category, ctx);
        let total_w = self.geo_weight
            + self.freshness_weight
            + self.time_weight
            + self.fit_weight
            + self.weather_weight;
        (self.geo_weight * geo
            + self.freshness_weight * fresh
            + self.time_weight * time
            + self.fit_weight * fit
            + self.weather_weight * weather)
            / total_w
    }

    /// The compound score of §1.2.
    #[must_use]
    pub fn compound(
        &self,
        prefs: &PreferenceVector,
        meta: &ClipMetadata,
        ctx: &ListenerContext,
        geo_distance_m: Option<f64>,
    ) -> f64 {
        let w = self.content_weight.clamp(0.0, 1.0);
        w * self.content_relevance(prefs, meta)
            + (1.0 - w) * self.context_relevance(meta, ctx, geo_distance_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Ambient, DriveContext};
    use pphcr_audio::ClipId;
    use pphcr_catalog::GeoTag;
    use pphcr_geo::{GeoPoint, ProjectedPoint, TimePoint};
    use pphcr_trajectory::TripPrediction;
    use pphcr_userdata::{FeedbackEvent, FeedbackKind, FeedbackStore, UserId};

    fn meta(cat: u16, kind: ClipKind, minutes: u64) -> ClipMetadata {
        ClipMetadata {
            id: ClipId(1),
            title: "t".into(),
            kind,
            category: CategoryId::new(cat),
            category_confidence: 1.0,
            duration: TimeSpan::minutes(minutes),
            published: TimePoint::at(0, 6, 0, 0),
            geo: None,
            transcript: Vec::new(),
        }
    }

    fn prefs_liking(cat: u16) -> PreferenceVector {
        let mut store = FeedbackStore::default();
        let t = TimePoint::at(0, 8, 0, 0);
        for _ in 0..3 {
            store.record(FeedbackEvent {
                user: UserId(1),
                clip: None,
                category: CategoryId::new(cat),
                kind: FeedbackKind::Like,
                time: t,
            });
        }
        store.preferences(UserId(1), t)
    }

    fn driving_ctx(complexity: f64) -> ListenerContext {
        let prediction = TripPrediction {
            destination: 1,
            confidence: 0.8,
            total_duration: TimeSpan::minutes(25),
            remaining: TimeSpan::minutes(20),
            route_ahead: vec![ProjectedPoint::new(0.0, 0.0), ProjectedPoint::new(12_000.0, 0.0)],
            complexity,
            posterior: vec![(1, 1.0)],
        };
        ListenerContext {
            now: TimePoint::at(0, 8, 10, 0),
            position: Some(ProjectedPoint::new(0.0, 0.0)),
            speed_mps: 10.0,
            drive: Some(DriveContext::new(prediction, vec![])),
            ambient: Ambient::default(),
        }
    }

    #[test]
    fn content_relevance_tracks_preferences() {
        let w = ScoringWeights::default();
        let prefs = prefs_liking(8);
        let liked = meta(8, ClipKind::Podcast, 10);
        let neutral = meta(3, ClipKind::Podcast, 10);
        assert!(w.content_relevance(&prefs, &liked) > 0.8);
        assert!((w.content_relevance(&prefs, &neutral) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn low_classifier_confidence_pulls_to_neutral() {
        let w = ScoringWeights::default();
        let prefs = prefs_liking(8);
        let mut m = meta(8, ClipKind::Podcast, 10);
        m.category_confidence = 0.1;
        let score = w.content_relevance(&prefs, &m);
        assert!(score > 0.5 && score < 0.6);
    }

    #[test]
    fn geo_kernel_decays() {
        let w = ScoringWeights::default();
        assert!((w.geo_kernel(0.0) - 1.0).abs() < 1e-12);
        assert!(w.geo_kernel(1_500.0) < w.geo_kernel(100.0));
        assert!(w.geo_kernel(20_000.0) < 0.01);
    }

    #[test]
    fn news_decays_faster_than_podcasts() {
        let w = ScoringWeights::default();
        let mut ctx = ListenerContext::stationary(TimePoint::at(2, 6, 0, 0));
        ctx.now = TimePoint::at(2, 6, 0, 0); // 48 h after publication
        let news = meta(14, ClipKind::NewsBulletin, 5);
        let podcast = meta(1, ClipKind::Podcast, 5);
        assert!(w.freshness(&news, &ctx) < w.freshness(&podcast, &ctx));
    }

    #[test]
    fn time_affinity_priors() {
        let w = ScoringWeights::default();
        let news = CategoryId::from_name("local-news").unwrap();
        let comedy = CategoryId::from_name("comedy").unwrap();
        assert!(w.time_affinity(news, 8) > w.time_affinity(news, 14));
        assert!(w.time_affinity(comedy, 21) > w.time_affinity(comedy, 8));
        assert_eq!(w.time_affinity(CategoryId::new(0), 12), 0.5);
    }

    #[test]
    fn complexity_penalizes_long_clips_only_when_twisty() {
        let w = ScoringWeights::default();
        let long = meta(1, ClipKind::Podcast, 30);
        let short = meta(1, ClipKind::Podcast, 3);
        let twisty = driving_ctx(8.0);
        let straight = driving_ctx(0.0);
        assert!(w.complexity_fit(&long, &twisty) < w.complexity_fit(&short, &twisty));
        assert!((w.complexity_fit(&long, &straight) - 1.0).abs() < 1e-9);
        // Stationary: no penalty at all.
        let stationary = ListenerContext::stationary(TimePoint::at(0, 9, 0, 0));
        assert_eq!(w.complexity_fit(&long, &stationary), 1.0);
    }

    #[test]
    fn compound_is_convex_combination() {
        let prefs = prefs_liking(8);
        let ctx = driving_ctx(1.0);
        let m = meta(8, ClipKind::Podcast, 10);
        for wc in [0.0, 0.3, 0.7, 1.0] {
            let w = ScoringWeights { content_weight: wc, ..Default::default() };
            let s = w.compound(&prefs, &m, &ctx, None);
            assert!((0.0..=1.0).contains(&s), "wc={wc}: {s}");
        }
        // Pure content weight: compound equals content relevance.
        let w = ScoringWeights { content_weight: 1.0, ..Default::default() };
        assert!(
            (w.compound(&prefs, &m, &ctx, None) - w.content_relevance(&prefs, &m)).abs() < 1e-12
        );
    }

    #[test]
    fn adverse_weather_boosts_traffic_and_penalizes_length() {
        let w = ScoringWeights::default();
        let mut rainy = driving_ctx(4.0);
        rainy.ambient.weather = crate::context::Weather::Snow;
        let clear = driving_ctx(4.0);
        let traffic = meta(CategoryId::from_name("traffic").unwrap().0, ClipKind::NewsBulletin, 2);
        assert!(
            w.weather_affinity(traffic.category, &rainy)
                > w.weather_affinity(traffic.category, &clear)
        );
        // Long clips get harder to justify in snow.
        let long = meta(1, ClipKind::Podcast, 30);
        assert!(w.complexity_fit(&long, &rainy) < w.complexity_fit(&long, &clear));
        // And the overall context relevance of the traffic bulletin rises.
        let prefs = PreferenceVector::neutral();
        assert!(
            w.compound(&prefs, &traffic, &rainy, None) > w.compound(&prefs, &traffic, &clear, None)
        );
    }

    #[test]
    fn activity_classification() {
        use crate::context::Activity;
        let mut ctx = ListenerContext::stationary(TimePoint::at(0, 9, 0, 0));
        assert_eq!(ctx.activity(), Activity::Still);
        ctx.speed_mps = 1.5;
        assert_eq!(ctx.activity(), Activity::Walking);
        ctx.speed_mps = 12.0;
        assert_eq!(ctx.activity(), Activity::Driving);
        assert!(ctx.is_driving());
    }

    #[test]
    fn geo_pinned_item_gains_from_proximity() {
        let w = ScoringWeights::default();
        let prefs = PreferenceVector::neutral();
        let ctx = driving_ctx(1.0);
        let mut tagged = meta(13, ClipKind::NewsBulletin, 4);
        tagged.geo = Some(GeoTag { point: GeoPoint::new(45.1, 7.7), radius_m: 1_000.0 });
        let near = w.compound(&prefs, &tagged, &ctx, Some(200.0));
        let far = w.compound(&prefs, &tagged, &ctx, Some(30_000.0));
        let unknown = w.compound(&prefs, &tagged, &ctx, None);
        assert!(near > far);
        assert!(far >= unknown - 0.05);
    }
}
