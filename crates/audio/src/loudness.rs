//! Loudness measurement and matching.
//!
//! Broadcast splicing has a second seamlessness requirement besides
//! sample continuity: the inserted clip must not be noticeably louder
//! or quieter than the surrounding programme (broadcasters normalize
//! to a target loudness; EBU R 128 in production, a windowed-RMS model
//! here). The replacement planner can use [`match_gain`] to compute the
//! gain that aligns a clip's loudness with the live stream around the
//! insertion point.

use crate::source::AudioSource;
use serde::{Deserialize, Serialize};

/// A loudness measurement over a source range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Loudness {
    /// Root-mean-square amplitude, in `[0, 1]`.
    pub rms: f64,
    /// Peak absolute amplitude observed.
    pub peak: f32,
    /// Samples measured.
    pub samples: u64,
}

impl Loudness {
    /// The measurement in dBFS-like terms (20·log10(rms)); `-inf` for
    /// silence.
    #[must_use]
    pub fn db(&self) -> f64 {
        20.0 * self.rms.log10()
    }
}

/// Measures RMS and peak of `source` over `[start, start + len)`.
///
/// # Panics
/// Panics if `len` is zero.
#[must_use]
pub fn measure(source: &impl AudioSource, start: u64, len: u64) -> Loudness {
    assert!(len > 0, "cannot measure zero samples");
    let mut sum_sq = 0.0f64;
    let mut peak = 0.0f32;
    for i in 0..len {
        let s = source.sample(start + i);
        sum_sq += f64::from(s) * f64::from(s);
        peak = peak.max(s.abs());
    }
    Loudness { rms: (sum_sq / len as f64).sqrt(), peak, samples: len }
}

/// The gain that brings `clip` to the loudness of `reference`, clamped
/// so the scaled peak cannot clip (exceed 1.0). Returns 1.0 when either
/// side is silent (nothing meaningful to match).
#[must_use]
pub fn match_gain(reference: Loudness, clip: Loudness) -> f32 {
    if reference.rms <= 0.0 || clip.rms <= 0.0 {
        return 1.0;
    }
    let gain = (reference.rms / clip.rms) as f32;
    if clip.peak > 0.0 {
        gain.min(1.0 / clip.peak)
    } else {
        gain
    }
}

/// A gain-wrapped source: `inner` scaled by a constant factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gained<S> {
    inner: S,
    gain: f32,
}

impl<S: AudioSource> Gained<S> {
    /// Wraps `inner` with a constant gain.
    #[must_use]
    pub fn new(inner: S, gain: f32) -> Self {
        Gained { inner, gain }
    }

    /// The applied gain.
    #[must_use]
    pub fn gain(&self) -> f32 {
        self.gain
    }
}

impl<S: AudioSource> AudioSource for Gained<S> {
    fn id(&self) -> crate::source::SourceId {
        self.inner.id()
    }

    fn sample(&self, pos: u64) -> f32 {
        self.inner.sample(pos) * self.gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ClipSource, LiveSource, SilenceSource};

    #[test]
    fn measure_basics() {
        let live = LiveSource::new(1);
        let l = measure(&live, 0, 50_000);
        // Value noise over [-1,1]: RMS well inside (0, 1).
        assert!(l.rms > 0.2 && l.rms < 0.8, "{l:?}");
        assert!(l.peak <= 1.0 && l.peak > 0.5);
        assert_eq!(l.samples, 50_000);
        assert!(l.db() < 0.0);
    }

    #[test]
    fn silence_measures_zero() {
        let l = measure(&SilenceSource, 0, 1_000);
        assert_eq!(l.rms, 0.0);
        assert_eq!(l.peak, 0.0);
        assert_eq!(l.db(), f64::NEG_INFINITY);
    }

    #[test]
    fn match_gain_aligns_rms() {
        let live = LiveSource::new(1);
        let clip = ClipSource::new(3, 100_000);
        let lref = measure(&live, 0, 50_000);
        let lclip = measure(&clip, 0, 50_000);
        let gain = match_gain(lref, lclip);
        let gained = Gained::new(clip, gain);
        let after = measure(&gained, 0, 50_000);
        let ratio = after.rms / lref.rms;
        assert!((ratio - 1.0).abs() < 0.05, "post-gain ratio {ratio}");
    }

    #[test]
    fn gain_clamped_against_clipping() {
        // A quiet reference vs a clip whose peak is near 1: boosting the
        // clip to a loud reference must not push the peak past 1.0.
        let clip = ClipSource::new(7, 100_000);
        let lclip = measure(&clip, 0, 50_000);
        let loud_ref = Loudness { rms: 10.0, peak: 1.0, samples: 1 };
        let gain = match_gain(loud_ref, lclip);
        assert!(gain * lclip.peak <= 1.0 + 1e-6);
    }

    #[test]
    fn silent_inputs_get_unit_gain() {
        let silent = Loudness { rms: 0.0, peak: 0.0, samples: 10 };
        let normal = Loudness { rms: 0.5, peak: 0.9, samples: 10 };
        assert_eq!(match_gain(silent, normal), 1.0);
        assert_eq!(match_gain(normal, silent), 1.0);
    }

    #[test]
    fn gained_preserves_identity() {
        use crate::source::AudioSource as _;
        let clip = ClipSource::new(9, 1_000);
        let g = Gained::new(clip, 0.5);
        assert_eq!(g.id(), clip.id());
        assert_eq!(g.sample(10), clip.sample(10) * 0.5);
        assert_eq!(g.gain(), 0.5);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn zero_length_measure_panics() {
        let _ = measure(&SilenceSource, 0, 0);
    }
}
