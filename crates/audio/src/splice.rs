//! Splice plans and the sample-accurate renderer.
//!
//! This is the mechanism behind the paper's Fig. 1/Fig. 4: the client
//! plays a single continuous output stream assembled from the live
//! service, recommended clips, and time-shifted live audio. A
//! [`SplicePlan`] is the *validated* description of that assembly — a
//! contiguous, gap-free sequence of segments on the output sample axis —
//! and [`SplicePlan::render`] produces the actual samples with short
//! fade-out/fade-in envelopes at every seam so the replacement is
//! "seamless" in the verifiable sense: no hard amplitude discontinuity.

use crate::source::{AudioSource, ClipSource, LiveSource, SourceId};
use serde::{Deserialize, Serialize};

/// What plays during one segment of the output stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SegmentSource {
    /// The live service in real time: output position = stream position.
    Live(LiveSource),
    /// The live service delayed by `delay_samples` (time-shifted replay
    /// from the client's [`crate::TimeShiftBuffer`]).
    LiveShifted {
        /// The underlying live service.
        source: LiveSource,
        /// How far behind real time the replay runs, in samples.
        delay_samples: u64,
    },
    /// A stored clip, starting `offset` samples into the clip.
    Clip {
        /// The clip audio.
        source: ClipSource,
        /// Clip-local sample at which playback starts.
        offset: u64,
    },
    /// Digital silence (tuning gaps, underflow masking).
    Silence,
}

impl SegmentSource {
    /// Identity of the underlying source.
    #[must_use]
    pub fn id(&self) -> SourceId {
        match self {
            SegmentSource::Live(s) => s.id(),
            SegmentSource::LiveShifted { source, .. } => source.id(),
            SegmentSource::Clip { source, .. } => source.id(),
            SegmentSource::Silence => SourceId(0),
        }
    }

    /// The sample this source contributes at output position `pos`
    /// within a segment starting at `seg_start`.
    #[inline]
    fn sample(&self, seg_start: u64, pos: u64) -> f32 {
        match self {
            SegmentSource::Live(s) => s.sample(pos),
            SegmentSource::LiveShifted { source, delay_samples } => {
                source.sample(pos.saturating_sub(*delay_samples))
            }
            SegmentSource::Clip { source, offset } => source.sample(offset + (pos - seg_start)),
            SegmentSource::Silence => 0.0,
        }
    }
}

/// One contiguous span of the output stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedSegment {
    /// First output sample of the segment (absolute).
    pub start: u64,
    /// One past the last output sample (absolute).
    pub end: u64,
    /// What plays.
    pub source: SegmentSource,
}

impl PlannedSegment {
    /// Segment length in samples.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for zero-length segments (invalid in a plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Why a splice plan is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpliceError {
    /// A plan must contain at least one segment.
    EmptyPlan,
    /// Segment `index` has zero or negative length.
    ZeroLengthSegment {
        /// Offending segment index.
        index: usize,
    },
    /// Segment `index` does not start where segment `index - 1` ends —
    /// the output would have a gap or an overlap.
    NotContiguous {
        /// Offending segment index.
        index: usize,
    },
    /// Segment `index` reads past the end of its clip: the plan would
    /// play silence that was never scheduled.
    ClipOverrun {
        /// Offending segment index.
        index: usize,
    },
    /// The seam fade is longer than half of segment `index`.
    FadeTooLong {
        /// Offending segment index.
        index: usize,
    },
}

impl std::fmt::Display for SpliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpliceError::EmptyPlan => write!(f, "splice plan has no segments"),
            SpliceError::ZeroLengthSegment { index } => {
                write!(f, "segment {index} has zero length")
            }
            SpliceError::NotContiguous { index } => {
                write!(f, "segment {index} does not start at the previous segment's end")
            }
            SpliceError::ClipOverrun { index } => {
                write!(f, "segment {index} reads past the end of its clip")
            }
            SpliceError::FadeTooLong { index } => {
                write!(f, "seam fade exceeds half of segment {index}")
            }
        }
    }
}

impl std::error::Error for SpliceError {}

/// Statistics from a render, used by tests and the E1 bench.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RenderStats {
    /// Samples produced.
    pub samples: u64,
    /// Seams crossed in the rendered range.
    pub seams: u32,
    /// Largest absolute sample-to-sample jump observed at any seam
    /// (within one fade length of a boundary).
    pub max_seam_jump: f32,
}

/// A validated, renderable assembly of the output stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplicePlan {
    segments: Vec<PlannedSegment>,
    fade_samples: u32,
}

impl SplicePlan {
    /// Builds and validates a plan. `fade_samples` is the length of the
    /// fade-out and fade-in applied on each side of every interior seam
    /// (and at the plan's outer edges nothing is faded).
    ///
    /// # Errors
    /// Any [`SpliceError`] describing the first defect found.
    pub fn new(segments: Vec<PlannedSegment>, fade_samples: u32) -> Result<Self, SpliceError> {
        if segments.is_empty() {
            return Err(SpliceError::EmptyPlan);
        }
        for (i, seg) in segments.iter().enumerate() {
            if seg.is_empty() {
                return Err(SpliceError::ZeroLengthSegment { index: i });
            }
            if i > 0 && seg.start != segments[i - 1].end {
                return Err(SpliceError::NotContiguous { index: i });
            }
            if let SegmentSource::Clip { source, offset } = seg.source {
                if offset + seg.len() > source.len_samples() {
                    return Err(SpliceError::ClipOverrun { index: i });
                }
            }
            if u64::from(fade_samples) * 2 > seg.len() {
                return Err(SpliceError::FadeTooLong { index: i });
            }
        }
        Ok(SplicePlan { segments, fade_samples })
    }

    /// The validated segments.
    #[must_use]
    pub fn segments(&self) -> &[PlannedSegment] {
        &self.segments
    }

    /// Seam fade length, samples.
    #[must_use]
    pub fn fade_samples(&self) -> u32 {
        self.fade_samples
    }

    /// First output sample covered by the plan.
    #[must_use]
    pub fn start(&self) -> u64 {
        self.segments[0].start
    }

    /// One past the last output sample covered.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.segments[self.segments.len() - 1].end
    }

    /// Index of the segment containing output position `pos`, if the
    /// plan covers it.
    #[must_use]
    pub fn segment_at(&self, pos: u64) -> Option<usize> {
        if pos < self.start() || pos >= self.end() {
            return None;
        }
        let idx = self.segments.partition_point(|s| s.end <= pos);
        (idx < self.segments.len()).then_some(idx)
    }

    /// The source audible at `pos` (ignoring fades).
    #[must_use]
    pub fn provenance(&self, pos: u64) -> Option<SourceId> {
        self.segment_at(pos).map(|i| self.segments[i].source.id())
    }

    /// The fade envelope at `pos` within segment `idx`: 1.0 in the
    /// segment body, ramping to ~0 at interior seams.
    fn envelope(&self, idx: usize, pos: u64) -> f32 {
        let fade = u64::from(self.fade_samples);
        if fade == 0 {
            return 1.0;
        }
        let seg = &self.segments[idx];
        let mut env = 1.0f32;
        // Fade-in after an interior seam at seg.start.
        if idx > 0 {
            let into = pos - seg.start;
            if into < fade {
                env = env.min((into + 1) as f32 / (fade + 1) as f32);
            }
        }
        // Fade-out before an interior seam at seg.end.
        if idx + 1 < self.segments.len() {
            let left = seg.end - 1 - pos;
            if left < fade {
                env = env.min((left + 1) as f32 / (fade + 1) as f32);
            }
        }
        env
    }

    /// The output sample at `pos`. Positions outside the plan render as
    /// silence.
    #[must_use]
    pub fn sample_at(&self, pos: u64) -> f32 {
        let Some(idx) = self.segment_at(pos) else { return 0.0 };
        let seg = &self.segments[idx];
        seg.source.sample(seg.start, pos) * self.envelope(idx, pos)
    }

    /// Renders output samples `[from, to)` into a vector and reports
    /// seam statistics.
    ///
    /// # Panics
    /// Panics if `from > to`.
    #[must_use]
    pub fn render(&self, from: u64, to: u64) -> (Vec<f32>, RenderStats) {
        assert!(from <= to, "render range is inverted");
        let mut out = vec![0.0f32; (to - from) as usize];
        let stats = self.render_into(from, &mut out);
        (out, stats)
    }

    /// Renders `out.len()` samples starting at `from` into `out`.
    pub fn render_into(&self, from: u64, out: &mut [f32]) -> RenderStats {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.sample_at(from + i as u64);
        }
        let to = from + out.len() as u64;
        // Seam statistics.
        let fade = u64::from(self.fade_samples).max(1);
        let mut seams = 0u32;
        let mut max_jump = 0.0f32;
        for w in self.segments.windows(2) {
            let seam = w[1].start;
            if seam <= from || seam >= to {
                continue;
            }
            seams += 1;
            let lo = seam.saturating_sub(fade).max(from + 1);
            let hi = (seam + fade).min(to);
            for p in lo..hi {
                let jump = (self.sample_at(p) - self.sample_at(p - 1)).abs();
                max_jump = max_jump.max(jump);
            }
        }
        RenderStats { samples: out.len() as u64, seams, max_seam_jump: max_jump }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(idx: u32) -> SegmentSource {
        SegmentSource::Live(LiveSource::new(idx))
    }

    fn clip(num: u64, len: u64) -> SegmentSource {
        SegmentSource::Clip { source: ClipSource::new(num, len), offset: 0 }
    }

    /// Live 0..1000, clip 1000..3000, live 3000..4000 — the Fig. 1
    /// replacement in miniature.
    fn replacement_plan(fade: u32) -> SplicePlan {
        SplicePlan::new(
            vec![
                PlannedSegment { start: 0, end: 1_000, source: live(1) },
                PlannedSegment { start: 1_000, end: 3_000, source: clip(7, 2_000) },
                PlannedSegment { start: 3_000, end: 4_000, source: live(1) },
            ],
            fade,
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_gaps_and_overlaps() {
        let gap = SplicePlan::new(
            vec![
                PlannedSegment { start: 0, end: 100, source: live(0) },
                PlannedSegment { start: 150, end: 300, source: live(0) },
            ],
            0,
        );
        assert_eq!(gap.unwrap_err(), SpliceError::NotContiguous { index: 1 });
        let overlap = SplicePlan::new(
            vec![
                PlannedSegment { start: 0, end: 100, source: live(0) },
                PlannedSegment { start: 90, end: 300, source: live(0) },
            ],
            0,
        );
        assert_eq!(overlap.unwrap_err(), SpliceError::NotContiguous { index: 1 });
    }

    #[test]
    fn validation_rejects_degenerate_plans() {
        assert_eq!(SplicePlan::new(vec![], 0).unwrap_err(), SpliceError::EmptyPlan);
        let zero = SplicePlan::new(vec![PlannedSegment { start: 5, end: 5, source: live(0) }], 0);
        assert_eq!(zero.unwrap_err(), SpliceError::ZeroLengthSegment { index: 0 });
    }

    #[test]
    fn validation_rejects_clip_overrun() {
        let plan = SplicePlan::new(
            vec![PlannedSegment { start: 0, end: 2_001, source: clip(1, 2_000) }],
            0,
        );
        assert_eq!(plan.unwrap_err(), SpliceError::ClipOverrun { index: 0 });
        // Offset pushes the read window past the end.
        let plan = SplicePlan::new(
            vec![PlannedSegment {
                start: 0,
                end: 1_000,
                source: SegmentSource::Clip { source: ClipSource::new(1, 1_500), offset: 600 },
            }],
            0,
        );
        assert_eq!(plan.unwrap_err(), SpliceError::ClipOverrun { index: 0 });
    }

    #[test]
    fn validation_rejects_overlong_fade() {
        let plan =
            SplicePlan::new(vec![PlannedSegment { start: 0, end: 100, source: live(0) }], 51);
        assert_eq!(plan.unwrap_err(), SpliceError::FadeTooLong { index: 0 });
    }

    #[test]
    fn provenance_is_exact() {
        let plan = replacement_plan(0);
        let live_id = LiveSource::new(1).id();
        let clip_id = ClipSource::new(7, 2_000).id();
        assert_eq!(plan.provenance(999), Some(live_id));
        assert_eq!(plan.provenance(1_000), Some(clip_id));
        assert_eq!(plan.provenance(2_999), Some(clip_id));
        assert_eq!(plan.provenance(3_000), Some(live_id));
        assert_eq!(plan.provenance(4_000), None);
    }

    #[test]
    fn body_samples_match_sources_exactly() {
        let plan = replacement_plan(50);
        let live_src = LiveSource::new(1);
        let clip_src = ClipSource::new(7, 2_000);
        // Deep inside each segment the envelope is 1.0: samples are
        // bit-exact, which is the provenance property DESIGN.md promises.
        assert_eq!(plan.sample_at(500), live_src.sample(500));
        assert_eq!(plan.sample_at(2_000), clip_src.sample(1_000));
        assert_eq!(plan.sample_at(3_500), live_src.sample(3_500));
    }

    #[test]
    fn live_resumes_in_real_time_after_clip() {
        // After the replacement the listener is back on *live* radio:
        // position 3_500 of the output plays position 3_500 of the
        // stream, not 1_500 (the Fig. 1 semantics: replacement, not pause).
        let plan = replacement_plan(0);
        let live_src = LiveSource::new(1);
        assert_eq!(plan.sample_at(3_500), live_src.sample(3_500));
        assert_ne!(plan.sample_at(3_500), live_src.sample(1_500));
    }

    #[test]
    fn time_shifted_segment_replays_the_past() {
        let shifted =
            SegmentSource::LiveShifted { source: LiveSource::new(2), delay_samples: 1_200 };
        let plan =
            SplicePlan::new(vec![PlannedSegment { start: 2_000, end: 3_000, source: shifted }], 0)
                .unwrap();
        let live_src = LiveSource::new(2);
        assert_eq!(plan.sample_at(2_500), live_src.sample(1_300));
    }

    #[test]
    fn fades_bound_seam_discontinuity() {
        let faded = replacement_plan(100);
        let hard = replacement_plan(0);
        let (_, stats_faded) = faded.render(0, 4_000);
        let (_, stats_hard) = hard.render(0, 4_000);
        assert_eq!(stats_faded.seams, 2);
        assert_eq!(stats_hard.seams, 2);
        // Uncorrelated noise jumps by up to ~2.0 at a hard cut; the fade
        // must make seams markedly smoother.
        assert!(
            stats_faded.max_seam_jump < stats_hard.max_seam_jump,
            "faded {} vs hard {}",
            stats_faded.max_seam_jump,
            stats_hard.max_seam_jump
        );
        assert!(stats_faded.max_seam_jump < 0.2, "got {}", stats_faded.max_seam_jump);
    }

    #[test]
    fn envelope_reaches_silence_at_seam_edges() {
        let plan = replacement_plan(100);
        // The last faded sample before the seam and the first after it
        // are near-silent.
        assert!(plan.sample_at(999).abs() < 0.02);
        assert!(plan.sample_at(1_000).abs() < 0.02);
    }

    #[test]
    fn render_outside_plan_is_silence() {
        let plan = replacement_plan(0);
        assert_eq!(plan.sample_at(4_000), 0.0);
        let (out, stats) = plan.render(3_990, 4_010);
        assert_eq!(stats.samples, 20);
        assert!(out[10..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn render_partial_range_counts_contained_seams_only() {
        let plan = replacement_plan(10);
        let (_, stats) = plan.render(0, 1_500);
        assert_eq!(stats.seams, 1);
        let (_, stats) = plan.render(1_100, 2_900);
        assert_eq!(stats.seams, 0);
    }

    #[test]
    fn segment_at_boundaries() {
        let plan = replacement_plan(0);
        assert_eq!(plan.segment_at(0), Some(0));
        assert_eq!(plan.segment_at(999), Some(0));
        assert_eq!(plan.segment_at(1_000), Some(1));
        assert_eq!(plan.segment_at(3_999), Some(2));
        assert_eq!(plan.segment_at(4_000), None);
    }

    #[test]
    fn clip_offset_plays_mid_clip() {
        let src = ClipSource::new(11, 5_000);
        let plan = SplicePlan::new(
            vec![PlannedSegment {
                start: 100,
                end: 600,
                source: SegmentSource::Clip { source: src, offset: 2_000 },
            }],
            0,
        )
        .unwrap();
        assert_eq!(plan.sample_at(100), src.sample(2_000));
        assert_eq!(plan.sample_at(599), src.sample(2_499));
    }
}
