//! The audio clip store.
//!
//! The paper's content repository receives "the editorial version of
//! more than 100 podcasts created every day" over FTP. This store is its
//! audio half: clips are registered with a duration and fetched as
//! bounded [`ClipSource`]s. Metadata (title, category, geo tags) lives
//! in `pphcr-catalog`; the two sides share the [`ClipId`].

use crate::bitrate::Bitrate;
use crate::sample::SampleClock;
use crate::source::ClipSource;
use pphcr_geo::TimeSpan;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of an audio clip, shared with the metadata catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClipId(pub u64);

impl std::fmt::Display for ClipId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "clip:{}", self.0)
    }
}

/// A stored clip's audio-side record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AudioClip {
    /// The clip's id.
    pub id: ClipId,
    /// Playback duration.
    pub duration: TimeSpan,
    /// Encoded bit rate (drives download-size accounting).
    pub bitrate: Bitrate,
}

impl AudioClip {
    /// Download size in bytes at the clip's bit rate.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.bitrate.bytes_for(self.duration)
    }
}

/// In-memory store of clip audio.
#[derive(Debug, Clone, Default)]
pub struct ClipStore {
    clips: HashMap<ClipId, AudioClip>,
}

impl ClipStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        ClipStore::default()
    }

    /// Registers a clip; returns the previous record when replacing.
    pub fn insert(&mut self, clip: AudioClip) -> Option<AudioClip> {
        self.clips.insert(clip.id, clip)
    }

    /// Registers a clip with the default live bit rate.
    pub fn insert_simple(&mut self, id: ClipId, duration: TimeSpan) {
        self.insert(AudioClip { id, duration, bitrate: Bitrate::LIVE_STREAM });
    }

    /// Looks up a clip record.
    #[must_use]
    pub fn get(&self, id: ClipId) -> Option<&AudioClip> {
        self.clips.get(&id)
    }

    /// True when `id` is registered.
    #[must_use]
    pub fn contains(&self, id: ClipId) -> bool {
        self.clips.contains_key(&id)
    }

    /// Number of stored clips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// True when the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// A playable source for the clip at the given sample rate.
    #[must_use]
    pub fn source(&self, id: ClipId, clock: SampleClock) -> Option<ClipSource> {
        self.get(id).map(|c| ClipSource::new(id.0, clock.samples_in(c.duration)))
    }

    /// Total stored audio duration.
    #[must_use]
    pub fn total_duration(&self) -> TimeSpan {
        self.clips.values().fold(TimeSpan::ZERO, |acc, c| acc.plus(c.duration))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::AudioSource;

    #[test]
    fn insert_get_roundtrip() {
        let mut store = ClipStore::new();
        store.insert_simple(ClipId(7), TimeSpan::minutes(4));
        assert!(store.contains(ClipId(7)));
        assert_eq!(store.get(ClipId(7)).unwrap().duration, TimeSpan::minutes(4));
        assert!(store.get(ClipId(8)).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn replacing_returns_old() {
        let mut store = ClipStore::new();
        store.insert_simple(ClipId(1), TimeSpan::minutes(1));
        let old = store.insert(AudioClip {
            id: ClipId(1),
            duration: TimeSpan::minutes(2),
            bitrate: Bitrate::kbps(64),
        });
        assert_eq!(old.unwrap().duration, TimeSpan::minutes(1));
        assert_eq!(store.get(ClipId(1)).unwrap().duration, TimeSpan::minutes(2));
    }

    #[test]
    fn source_has_right_length() {
        let mut store = ClipStore::new();
        store.insert_simple(ClipId(5), TimeSpan::seconds(10));
        let clock = SampleClock::new(1_000);
        let src = store.source(ClipId(5), clock).unwrap();
        assert_eq!(src.len_samples(), 10_000);
        assert_ne!(src.sample(9_999), 0.0);
        assert_eq!(src.sample(10_000), 0.0);
        assert!(store.source(ClipId(99), clock).is_none());
    }

    #[test]
    fn size_accounting() {
        let clip = AudioClip {
            id: ClipId(2),
            duration: TimeSpan::minutes(15),
            bitrate: Bitrate::LIVE_STREAM,
        };
        // 96 kbps × 900 s / 8 = 10.8 MB.
        assert_eq!(clip.size_bytes(), 10_800_000);
    }

    #[test]
    fn total_duration_sums() {
        let mut store = ClipStore::new();
        store.insert_simple(ClipId(1), TimeSpan::minutes(3));
        store.insert_simple(ClipId(2), TimeSpan::minutes(7));
        assert_eq!(store.total_duration(), TimeSpan::minutes(10));
    }
}
