//! Bit-rate and byte accounting.
//!
//! The paper's hybrid delivery argument (§1) is an accounting argument:
//! the shared linear stream rides the broadcast channel once for all
//! listeners, while personalized clips travel the Internet per listener.
//! [`Bitrate`] provides the byte math the network-cost model
//! (`pphcr-core::netcost`) builds on. Rai's live streams are 96 kbps,
//! which is the default used throughout.

use pphcr_geo::TimeSpan;
use serde::{Deserialize, Serialize};

/// A constant bit rate, in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bitrate(pub u64);

impl Bitrate {
    /// The paper's live stream rate: 96 kbps.
    pub const LIVE_STREAM: Bitrate = Bitrate(96_000);

    /// A rate of `n` kilobits per second.
    #[must_use]
    pub fn kbps(n: u64) -> Self {
        Bitrate(n * 1_000)
    }

    /// Bits per second.
    #[must_use]
    pub fn bps(self) -> u64 {
        self.0
    }

    /// Bytes needed to carry `span` of audio at this rate (rounded up).
    #[must_use]
    pub fn bytes_for(self, span: TimeSpan) -> u64 {
        (self.0 * span.as_seconds()).div_ceil(8)
    }

    /// Megabytes (10^6 bytes) for `span`, as a float for reporting.
    #[must_use]
    pub fn megabytes_for(self, span: TimeSpan) -> f64 {
        self.bytes_for(span) as f64 / 1e6
    }
}

impl std::fmt::Display for Bitrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_multiple_of(1_000) {
            write!(f, "{} kbps", self.0 / 1_000)
        } else {
            write!(f, "{} bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_one_hour() {
        // 96 kbps × 3600 s = 43.2 MB/h.
        let bytes = Bitrate::LIVE_STREAM.bytes_for(TimeSpan::hours(1));
        assert_eq!(bytes, 43_200_000);
        assert!((Bitrate::LIVE_STREAM.megabytes_for(TimeSpan::hours(1)) - 43.2).abs() < 1e-9);
    }

    #[test]
    fn rounding_up_partial_bytes() {
        // 1 bps for 1 s = 1 bit → 1 byte.
        assert_eq!(Bitrate(1).bytes_for(TimeSpan::seconds(1)), 1);
        assert_eq!(Bitrate(9).bytes_for(TimeSpan::seconds(1)), 2);
    }

    #[test]
    fn zero_span_is_zero_bytes() {
        assert_eq!(Bitrate::LIVE_STREAM.bytes_for(TimeSpan::ZERO), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bitrate::kbps(96).to_string(), "96 kbps");
        assert_eq!(Bitrate(1_500).to_string(), "1500 bps");
    }
}
