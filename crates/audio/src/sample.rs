//! Sample-rate math: converting between the platform clock (seconds)
//! and sample indices.
//!
//! The whole audio substrate is indexed in *samples since the simulation
//! epoch*. A [`SampleClock`] fixes the sample rate and performs the
//! conversions; keeping it explicit (instead of a global constant) lets
//! benches run the splicer at radio rates (48 kHz) while unit tests use
//! small rates for speed without changing any code path.

use pphcr_geo::{TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};

/// A fixed sample rate plus conversions between clock time and samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleClock {
    rate_hz: u32,
}

impl SampleClock {
    /// Broadcast-grade rate used by the benchmarks.
    pub const BROADCAST: SampleClock = SampleClock { rate_hz: 48_000 };

    /// Creates a clock at `rate_hz` samples per second.
    ///
    /// # Panics
    /// Panics if `rate_hz` is zero.
    #[must_use]
    pub fn new(rate_hz: u32) -> Self {
        assert!(rate_hz > 0, "sample rate must be positive");
        SampleClock { rate_hz }
    }

    /// Samples per second.
    #[must_use]
    pub fn rate_hz(self) -> u32 {
        self.rate_hz
    }

    /// The first sample at or after the instant `t`.
    #[must_use]
    pub fn sample_at(self, t: TimePoint) -> u64 {
        t.seconds() * u64::from(self.rate_hz)
    }

    /// Number of samples in a span.
    #[must_use]
    pub fn samples_in(self, span: TimeSpan) -> u64 {
        span.as_seconds() * u64::from(self.rate_hz)
    }

    /// The instant containing sample `s` (floor to whole seconds).
    #[must_use]
    pub fn time_of(self, s: u64) -> TimePoint {
        TimePoint(s / u64::from(self.rate_hz))
    }

    /// Span covered by `n` samples, rounded down to whole seconds.
    #[must_use]
    pub fn span_of(self, n: u64) -> TimeSpan {
        TimeSpan::seconds(n / u64::from(self.rate_hz))
    }

    /// Span of `n` samples in fractional seconds.
    #[must_use]
    pub fn span_of_f64(self, n: u64) -> f64 {
        n as f64 / f64::from(self.rate_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip_on_second_boundaries() {
        let c = SampleClock::new(8_000);
        let t = TimePoint::at(0, 1, 2, 3);
        let s = c.sample_at(t);
        assert_eq!(s, 3_723 * 8_000);
        assert_eq!(c.time_of(s), t);
    }

    #[test]
    fn samples_in_span() {
        let c = SampleClock::new(100);
        assert_eq!(c.samples_in(TimeSpan::minutes(2)), 12_000);
        assert_eq!(c.span_of(12_050), TimeSpan::seconds(120));
        assert!((c.span_of_f64(150) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn broadcast_rate() {
        assert_eq!(SampleClock::BROADCAST.rate_hz(), 48_000);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn zero_rate_panics() {
        let _ = SampleClock::new(0);
    }
}
