//! The time-shift ring buffer.
//!
//! Paper Fig. 4 / §2.1.2: after the recommended clip, Lilly hears "the
//! time shifted live 'The rabbit's roar': the program began 20 minutes
//! ago, but the app can still smoothly present it". That requires the
//! client to have *recorded* the live stream while something else was
//! playing. [`TimeShiftBuffer`] is that recorder: a bounded ring over a
//! live source, written in real time, readable at any delay up to its
//! capacity.
//!
//! Unlike the deterministic sources, the buffer stores real samples —
//! its capacity is the honest memory cost of the feature on the device.

use crate::source::{AudioSource, SourceId};

/// A bounded recording of the most recent samples of a live source.
#[derive(Debug, Clone)]
pub struct TimeShiftBuffer {
    source_id: SourceId,
    capacity: usize,
    ring: Vec<f32>,
    /// Absolute sample index one past the newest recorded sample.
    head: u64,
    /// Absolute sample index of the oldest retained sample.
    tail: u64,
}

/// Why a time-shifted read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeShiftError {
    /// The requested range reaches before the oldest retained sample —
    /// the shift exceeds the buffer capacity (or recording started too
    /// late).
    Evicted {
        /// Oldest absolute sample still available.
        oldest_available: u64,
    },
    /// The requested range reaches past the newest recorded sample —
    /// reading into the future of the recording.
    NotYetRecorded {
        /// One past the newest absolute sample available.
        newest_available: u64,
    },
}

impl std::fmt::Display for TimeShiftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeShiftError::Evicted { oldest_available } => {
                write!(
                    f,
                    "requested samples already evicted (oldest available: {oldest_available})"
                )
            }
            TimeShiftError::NotYetRecorded { newest_available } => {
                write!(
                    f,
                    "requested samples not yet recorded (newest available: {newest_available})"
                )
            }
        }
    }
}

impl std::error::Error for TimeShiftError {}

impl TimeShiftBuffer {
    /// Creates a buffer over `source_id` retaining up to
    /// `capacity_samples` samples. Recording starts at absolute sample
    /// `start`.
    ///
    /// # Panics
    /// Panics if `capacity_samples` is zero.
    #[must_use]
    pub fn new(source_id: SourceId, capacity_samples: usize, start: u64) -> Self {
        assert!(capacity_samples > 0, "time-shift capacity must be positive");
        TimeShiftBuffer {
            source_id,
            capacity: capacity_samples,
            ring: vec![0.0; capacity_samples],
            head: start,
            tail: start,
        }
    }

    /// The recorded source.
    #[must_use]
    pub fn source_id(&self) -> SourceId {
        self.source_id
    }

    /// Maximum retained samples.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Oldest absolute sample still retained.
    #[must_use]
    pub fn oldest(&self) -> u64 {
        self.tail
    }

    /// One past the newest absolute sample recorded.
    #[must_use]
    pub fn newest(&self) -> u64 {
        self.head
    }

    /// Number of samples currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.head - self.tail) as usize
    }

    /// True when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Records the live source up to absolute sample `until`
    /// (exclusive). Called by the player as wall-clock time advances;
    /// recording beyond capacity evicts the oldest samples.
    pub fn record_until(&mut self, source: &impl AudioSource, until: u64) {
        debug_assert_eq!(source.id(), self.source_id, "recording a different source");
        while self.head < until {
            let slot = (self.head % self.capacity as u64) as usize;
            self.ring[slot] = source.sample(self.head);
            self.head += 1;
        }
        if self.head - self.tail > self.capacity as u64 {
            self.tail = self.head - self.capacity as u64;
        }
    }

    /// Reads `out.len()` samples starting at absolute sample `start`.
    ///
    /// # Errors
    /// [`TimeShiftError::Evicted`] when part of the range has been
    /// overwritten; [`TimeShiftError::NotYetRecorded`] when it reaches
    /// past the recording head.
    pub fn read(&self, start: u64, out: &mut [f32]) -> Result<(), TimeShiftError> {
        let end = start + out.len() as u64;
        if start < self.tail {
            return Err(TimeShiftError::Evicted { oldest_available: self.tail });
        }
        if end > self.head {
            return Err(TimeShiftError::NotYetRecorded { newest_available: self.head });
        }
        for (i, o) in out.iter_mut().enumerate() {
            let pos = start + i as u64;
            *o = self.ring[(pos % self.capacity as u64) as usize];
        }
        Ok(())
    }

    /// The largest delay (in samples) currently readable: how far behind
    /// live a time-shifted playhead may be.
    #[must_use]
    pub fn max_delay(&self) -> u64 {
        self.head - self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::LiveSource;

    #[test]
    fn recorded_samples_match_source() {
        let live = LiveSource::new(2);
        let mut buf = TimeShiftBuffer::new(live.id(), 1_000, 0);
        buf.record_until(&live, 500);
        let mut out = vec![0.0f32; 100];
        buf.read(200, &mut out).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, live.sample(200 + i as u64));
        }
    }

    #[test]
    fn eviction_moves_tail() {
        let live = LiveSource::new(2);
        let mut buf = TimeShiftBuffer::new(live.id(), 100, 0);
        buf.record_until(&live, 250);
        assert_eq!(buf.oldest(), 150);
        assert_eq!(buf.newest(), 250);
        assert_eq!(buf.len(), 100);
        // Still-retained range reads correctly after wrap-around.
        let mut out = vec![0.0f32; 50];
        buf.read(180, &mut out).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, live.sample(180 + i as u64));
        }
    }

    #[test]
    fn reading_evicted_range_errors() {
        let live = LiveSource::new(0);
        let mut buf = TimeShiftBuffer::new(live.id(), 100, 0);
        buf.record_until(&live, 300);
        let mut out = vec![0.0f32; 10];
        let err = buf.read(100, &mut out).unwrap_err();
        assert_eq!(err, TimeShiftError::Evicted { oldest_available: 200 });
    }

    #[test]
    fn reading_future_errors() {
        let live = LiveSource::new(0);
        let mut buf = TimeShiftBuffer::new(live.id(), 100, 0);
        buf.record_until(&live, 50);
        let mut out = vec![0.0f32; 10];
        let err = buf.read(45, &mut out).unwrap_err();
        assert_eq!(err, TimeShiftError::NotYetRecorded { newest_available: 50 });
    }

    #[test]
    fn recording_started_late_misses_earlier_audio() {
        let live = LiveSource::new(1);
        // Tuned in at sample 1000; the programme started at 0.
        let mut buf = TimeShiftBuffer::new(live.id(), 10_000, 1_000);
        buf.record_until(&live, 2_000);
        let mut out = vec![0.0f32; 10];
        assert!(matches!(buf.read(500, &mut out), Err(TimeShiftError::Evicted { .. })));
        assert!(buf.read(1_500, &mut out).is_ok());
    }

    /// The Lilly scenario in miniature: record the live stream while a
    /// clip plays, then replay the missed programme from its start.
    #[test]
    fn lilly_timeshift_replay() {
        let live = LiveSource::new(4);
        let program_start = 10_000u64;
        // 20 "minutes" later (here: 2 000 samples) the clip ends and the
        // programme should replay from its start.
        let mut buf = TimeShiftBuffer::new(live.id(), 5_000, program_start);
        buf.record_until(&live, 12_000);
        assert!(buf.max_delay() >= 2_000);
        let mut out = vec![0.0f32; 2_000];
        buf.read(program_start, &mut out).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, live.sample(program_start + i as u64));
        }
    }

    #[test]
    fn incremental_recording_is_contiguous() {
        let live = LiveSource::new(9);
        let mut buf = TimeShiftBuffer::new(live.id(), 1_000, 0);
        for step in 1..=20 {
            buf.record_until(&live, step * 37);
        }
        assert_eq!(buf.newest(), 740);
        let mut out = vec![0.0f32; 740];
        buf.read(0, &mut out).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, live.sample(i as u64));
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TimeShiftBuffer::new(SourceId(1), 0, 0);
    }
}
