//! Simulated linear-audio substrate for PPHCR.
//!
//! The paper's platform splices recommended audio clips into live radio
//! streams: *"the selected live audio is seamlessly replaced by the
//! recommended clips"* (§1.3), with buffering synchronized to schedule
//! metadata so a live programme can resume *time-shifted* after a clip
//! (Fig. 4). The real system consumes 10 live 96 kbps streams from Rai;
//! we replace them with deterministic synthetic PCM (see `DESIGN.md`):
//! every source is a pure function from sample index to amplitude, so
//! tests can verify *exactly* which source each output sample came from
//! and that seams are sample-accurate.
//!
//! Modules:
//!
//! * [`sample`] — sample-rate math and clock↔sample conversions,
//! * [`source`] — deterministic audio sources (live services, clips,
//!   silence),
//! * [`clip`] — the audio clip store (the audio half of the paper's
//!   content repository),
//! * [`timeshift`] — the ring buffer that lets a running programme be
//!   replayed from its start,
//! * [`splice`] — splice plans and the sample-accurate renderer with
//!   crossfades,
//! * [`bitrate`] — bit-rate/byte accounting used by the network-cost
//!   model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitrate;
pub mod clip;
pub mod loudness;
pub mod sample;
pub mod source;
pub mod splice;
pub mod timeshift;

pub use bitrate::Bitrate;
pub use clip::{AudioClip, ClipId, ClipStore};
pub use loudness::{match_gain, measure, Gained, Loudness};
pub use sample::SampleClock;
pub use source::{AudioSource, ClipSource, LiveSource, SilenceSource, SourceId};
pub use splice::{PlannedSegment, RenderStats, SpliceError, SplicePlan};
pub use timeshift::TimeShiftBuffer;
