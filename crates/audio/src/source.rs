//! Deterministic audio sources.
//!
//! Every source is a *pure function* from a sample index to an
//! amplitude in `[-1, 1]`, derived from the source's identity by a
//! splitmix-style hash. Two properties make this the right substitute
//! for real Rai streams (see `DESIGN.md`):
//!
//! 1. **Provenance is verifiable.** Given an output sample and a
//!    position, a test can check which source produced it — so "the
//!    clip seamlessly replaced the live stream between 11:00:00 and
//!    11:15:00" is an assertable statement, not a listening impression.
//! 2. **No storage.** A 24-hour live stream needs no buffer until a
//!    component (the time-shifter) explicitly records it, exactly like
//!    the real tuner.

use serde::{Deserialize, Serialize};

/// Identity of an audio source; the sample function is keyed on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceId(pub u64);

impl SourceId {
    /// Derives the id for a live service from its service index.
    #[must_use]
    pub fn live_service(index: u32) -> Self {
        SourceId(0x4C49_5645_0000_0000 | u64::from(index))
    }

    /// Derives the id for a stored clip from its clip number.
    #[must_use]
    pub fn clip(number: u64) -> Self {
        SourceId(0x434C_4950_0000_0000 | number)
    }
}

/// A deterministic sample generator.
pub trait AudioSource {
    /// The source's identity.
    fn id(&self) -> SourceId;

    /// Amplitude of sample `pos` (source-local index), in `[-1, 1]`.
    fn sample(&self, pos: u64) -> f32;

    /// Fills `out` with samples `[start, start + out.len())`.
    fn fill(&self, start: u64, out: &mut [f32]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.sample(start + i as u64);
        }
    }
}

/// `SplitMix64` finalizer: uncorrelated 64-bit output per input.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Spacing of the value-noise anchors, in samples. Between anchors the
/// signal is linearly interpolated, so adjacent samples within one
/// source differ by at most `2 / ANCHOR_SPACING` — a *smooth* signal, as
/// real programme audio is at audio rates. A hard cut between two
/// sources can therefore jump by up to 2.0, which is exactly what makes
/// seam smoothness a falsifiable property (see `splice`).
pub const ANCHOR_SPACING: u64 = 64;

#[inline]
fn anchor_value(id: SourceId, anchor: u64) -> f32 {
    let h = mix(id.0 ^ mix(anchor));
    let v = (h >> 40) as f32 / ((1u64 << 24) - 1) as f32;
    v * 2.0 - 1.0
}

/// Deterministic amplitude for `(id, pos)`, in `[-1, 1]`: value noise,
/// linearly interpolated between per-source anchors.
#[inline]
#[must_use]
pub fn deterministic_sample(id: SourceId, pos: u64) -> f32 {
    let a = pos / ANCHOR_SPACING;
    let frac = (pos % ANCHOR_SPACING) as f32 / ANCHOR_SPACING as f32;
    let v0 = anchor_value(id, a);
    let v1 = anchor_value(id, a + 1);
    v0 + (v1 - v0) * frac
}

/// A live radio service: an unbounded deterministic stream. The sample
/// position is *absolute* (samples since the simulation epoch), mirroring
/// a broadcast that exists whether or not anyone listens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveSource {
    id: SourceId,
}

impl LiveSource {
    /// Creates the live source for service `index`.
    #[must_use]
    pub fn new(index: u32) -> Self {
        LiveSource { id: SourceId::live_service(index) }
    }
}

impl AudioSource for LiveSource {
    fn id(&self) -> SourceId {
        self.id
    }

    fn sample(&self, pos: u64) -> f32 {
        deterministic_sample(self.id, pos)
    }
}

/// A stored clip: a bounded deterministic stream. Positions are
/// clip-local (0 = clip start); reads past the end return silence,
/// which the splicer treats as a planning bug surfaced by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClipSource {
    id: SourceId,
    len_samples: u64,
}

impl ClipSource {
    /// Creates a clip source of `len_samples` samples.
    #[must_use]
    pub fn new(number: u64, len_samples: u64) -> Self {
        ClipSource { id: SourceId::clip(number), len_samples }
    }

    /// The clip length in samples.
    #[must_use]
    pub fn len_samples(&self) -> u64 {
        self.len_samples
    }
}

impl AudioSource for ClipSource {
    fn id(&self) -> SourceId {
        self.id
    }

    fn sample(&self, pos: u64) -> f32 {
        if pos < self.len_samples {
            deterministic_sample(self.id, pos)
        } else {
            0.0
        }
    }
}

/// Digital silence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SilenceSource;

impl AudioSource for SilenceSource {
    fn id(&self) -> SourceId {
        SourceId(0)
    }

    fn sample(&self, _pos: u64) -> f32 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let s = LiveSource::new(3);
        assert_eq!(s.sample(12_345), s.sample(12_345));
    }

    #[test]
    fn samples_in_range() {
        let s = LiveSource::new(1);
        for pos in (0..100_000).step_by(997) {
            let v = s.sample(pos);
            assert!((-1.0..=1.0).contains(&v), "sample {pos} out of range: {v}");
        }
    }

    #[test]
    fn different_sources_differ() {
        let a = LiveSource::new(1);
        let b = LiveSource::new(2);
        let same = (0..1_000).filter(|&p| a.sample(p) == b.sample(p)).count();
        assert!(same < 10, "streams should be uncorrelated, {same} collisions");
    }

    #[test]
    fn signal_is_smooth_within_a_source() {
        let s = LiveSource::new(5);
        let max_step = 2.0 / ANCHOR_SPACING as f32;
        for p in 0..10_000u64 {
            let d = (s.sample(p + 1) - s.sample(p)).abs();
            assert!(d <= max_step + 1e-6, "step {d} at {p} exceeds {max_step}");
        }
    }

    #[test]
    fn samples_look_like_audio_not_dc() {
        let s = LiveSource::new(7);
        let mean: f32 = (0..100_000).map(|p| s.sample(p)).sum::<f32>() / 100_000.0;
        assert!(mean.abs() < 0.05, "mean amplitude should be ~0, got {mean}");
    }

    #[test]
    fn clip_ends_in_silence() {
        let c = ClipSource::new(9, 100);
        assert_ne!(c.sample(99), 0.0);
        assert_eq!(c.sample(100), 0.0);
        assert_eq!(c.sample(1_000_000), 0.0);
    }

    #[test]
    fn fill_matches_pointwise() {
        let c = ClipSource::new(4, 1_000);
        let mut buf = vec![0.0f32; 64];
        c.fill(500, &mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, c.sample(500 + i as u64));
        }
    }

    #[test]
    fn id_namespaces_do_not_collide() {
        assert_ne!(SourceId::live_service(1), SourceId::clip(1));
        assert_ne!(SourceId::live_service(0), SilenceSource.id());
    }

    #[test]
    fn silence_is_silent() {
        assert_eq!(SilenceSource.sample(123), 0.0);
    }
}
