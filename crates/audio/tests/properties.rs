//! Property-based tests for the audio substrate.

use pphcr_audio::loudness::{match_gain, measure, Gained};
use pphcr_audio::source::{AudioSource, ClipSource, LiveSource, ANCHOR_SPACING};
use pphcr_audio::splice::{PlannedSegment, SegmentSource, SplicePlan};
use pphcr_audio::{Bitrate, TimeShiftBuffer};
use pphcr_geo::TimeSpan;
use proptest::prelude::*;

proptest! {
    /// Every source sample is in [-1, 1] and deterministic.
    #[test]
    fn sources_bounded_and_deterministic(service in 0u32..64, pos in 0u64..10_000_000) {
        let s = LiveSource::new(service);
        let v = s.sample(pos);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert_eq!(v, LiveSource::new(service).sample(pos));
    }

    /// Within one source, adjacent samples never jump more than the
    /// value-noise slope bound.
    #[test]
    fn sources_are_smooth(service in 0u32..64, pos in 0u64..1_000_000) {
        let s = LiveSource::new(service);
        let step = (s.sample(pos + 1) - s.sample(pos)).abs();
        prop_assert!(step <= 2.0 / ANCHOR_SPACING as f32 + 1e-6);
    }

    /// Clips are silent exactly from their end onwards.
    #[test]
    fn clips_end_cleanly(len in 1u64..100_000, probe in 0u64..200_000) {
        let c = ClipSource::new(5, len);
        if probe >= len {
            prop_assert_eq!(c.sample(probe), 0.0);
        }
    }

    /// Bitrate byte accounting is monotone in both rate and duration,
    /// and additive in duration (up to the ceil rounding of each term).
    #[test]
    fn bitrate_monotone_additive(kbps in 1u64..512, s1 in 0u64..100_000, s2 in 0u64..100_000) {
        let r = Bitrate::kbps(kbps);
        let b1 = r.bytes_for(TimeSpan::seconds(s1));
        let b2 = r.bytes_for(TimeSpan::seconds(s2));
        let both = r.bytes_for(TimeSpan::seconds(s1 + s2));
        prop_assert!(both + 1 >= b1 + b2);
        prop_assert!(both <= b1 + b2 + 1);
        if s1 <= s2 {
            prop_assert!(b1 <= b2);
        }
    }

    /// Time-shift reads equal the source for every valid window.
    #[test]
    fn timeshift_window_reads_exact(
        cap in 64usize..4_096,
        recorded in 1u64..20_000,
        offset_frac in 0.0f64..1.0,
    ) {
        let live = LiveSource::new(3);
        let mut buf = TimeShiftBuffer::new(live.id(), cap, 0);
        buf.record_until(&live, recorded);
        let window = buf.newest() - buf.oldest();
        prop_assume!(window >= 8);
        let len = 8usize;
        let start = buf.oldest() + ((window - len as u64) as f64 * offset_frac) as u64;
        let mut out = vec![0.0f32; len];
        buf.read(start, &mut out).unwrap();
        for (i, &v) in out.iter().enumerate() {
            prop_assert_eq!(v, live.sample(start + i as u64));
        }
        // Retention never exceeds capacity.
        prop_assert!(buf.len() <= cap);
    }

    /// Seam statistics: with fades the worst seam jump never exceeds
    /// the fade's theoretical envelope bound.
    #[test]
    fn fade_bounds_seam_jump(fade in 16u32..400, seg_len in 1_000u64..8_000) {
        prop_assume!(u64::from(fade) * 2 < seg_len);
        let plan = SplicePlan::new(
            vec![
                PlannedSegment { start: 0, end: seg_len, source: SegmentSource::Live(LiveSource::new(1)) },
                PlannedSegment {
                    start: seg_len,
                    end: seg_len * 2,
                    source: SegmentSource::Clip { source: ClipSource::new(9, seg_len), offset: 0 },
                },
            ],
            fade,
        ).unwrap();
        let (_, stats) = plan.render(0, seg_len * 2);
        prop_assert_eq!(stats.seams, 1);
        // Envelope slope bound (2 / fade) plus the intra-source slope.
        let bound = 2.0 / fade as f32 + 2.0 / ANCHOR_SPACING as f32 + 1e-3;
        prop_assert!(stats.max_seam_jump <= bound, "{} > {}", stats.max_seam_jump, bound);
    }

    /// Loudness gain matching never produces clipping and scales RMS
    /// linearly.
    #[test]
    fn gain_matching_no_clipping(clip_no in 0u64..32, target_no in 32u64..64) {
        let clip = ClipSource::new(clip_no, 50_000);
        let target = ClipSource::new(target_no, 50_000);
        let l_clip = measure(&clip, 0, 20_000);
        let l_target = measure(&target, 0, 20_000);
        let gain = match_gain(l_target, l_clip);
        let gained = Gained::new(clip, gain);
        let l_after = measure(&gained, 0, 20_000);
        prop_assert!(l_after.peak <= 1.0 + 1e-5, "clipped: {}", l_after.peak);
        // RMS scales exactly by the gain.
        prop_assert!((l_after.rms - l_clip.rms * f64::from(gain)).abs() < 1e-6);
    }
}
