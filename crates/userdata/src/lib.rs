//! User data stores for PPHCR.
//!
//! The paper's user-management component (Fig. 3) keeps three stores,
//! all reproduced here:
//!
//! * the **profiles DB** ("the user's demographic details") —
//!   [`profile`],
//! * the **feedbacks DB** ("content navigation logs sent by the
//!   listener's app together with the implicit or explicit rating") —
//!   [`feedback`], including the decayed per-category preference model
//!   the recommender reads,
//! * the **tracking data DB** ("a `PostGIS` based spatial DB with the
//!   listener's geographical information") — [`tracking`], wrapping the
//!   trajectory analytics of `pphcr-trajectory`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod feedback;
pub mod profile;
pub mod sessions;
pub mod tracking;

pub use feedback::{FeedbackEvent, FeedbackKind, FeedbackStore, PreferenceVector};
pub use profile::{AgeBand, ProfileStore, UserId, UserProfile};
pub use sessions::{ListeningSession, SessionEnd, SessionStore};
pub use tracking::TrackingStore;
