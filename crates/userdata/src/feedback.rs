//! The feedbacks DB and the learned preference model.
//!
//! Paper §1.3/§2: "While the user is listening to the service, a
//! positive implicit feedback is periodically sent for that audio
//! content. In contrast, each skip action generates a negative
//! feedback", plus explicit like/dislike buttons. The store keeps the
//! raw navigation log; [`FeedbackStore::preferences`] folds it into a
//! per-category preference vector with exponential time decay — recent
//! taste outweighs last month's — which is the content-based half of
//! the recommender's compound score.

use crate::profile::UserId;
use pphcr_audio::ClipId;
use pphcr_catalog::{CategoryId, CATEGORY_COUNT};
use pphcr_geo::{TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The kind (and sign) of one feedback event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FeedbackKind {
    /// Explicit like button.
    Like,
    /// Explicit dislike button.
    Dislike,
    /// The listener skipped the item.
    Skip,
    /// The listener heard the item to the end.
    ListenedThrough,
    /// Periodic implicit positive while listening (fraction of the item
    /// heard so far, in `(0, 1]`).
    PartialListen(f64),
}

impl FeedbackKind {
    /// The signed weight this event contributes to its category.
    #[must_use]
    pub fn weight(self) -> f64 {
        match self {
            FeedbackKind::Like => 1.0,
            FeedbackKind::Dislike => -1.0,
            FeedbackKind::Skip => -0.7,
            // Passive completion is weak evidence: people leave the
            // radio on. Explicit likes must dominate it by far, or the
            // learner latches onto whatever it happened to play first.
            FeedbackKind::ListenedThrough => 0.25,
            FeedbackKind::PartialListen(fraction) => 0.1 * fraction.clamp(0.0, 1.0),
        }
    }

    /// True for events the listener caused on purpose (buttons), as
    /// opposed to behavioural signals.
    #[must_use]
    pub fn is_explicit(self) -> bool {
        matches!(self, FeedbackKind::Like | FeedbackKind::Dislike)
    }
}

/// One entry of the navigation log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackEvent {
    /// Who.
    pub user: UserId,
    /// The clip the feedback is about, when it is about a clip (skips
    /// of live programmes carry `None`).
    pub clip: Option<ClipId>,
    /// The content category the feedback applies to.
    pub category: CategoryId,
    /// What happened.
    pub kind: FeedbackKind,
    /// When.
    pub time: TimePoint,
}

/// A listener's decayed per-category preference scores.
///
/// Scores are squashed into `[-1, 1]` by `tanh`; 0 means "no signal".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreferenceVector {
    scores: Vec<f64>,
}

impl PreferenceVector {
    /// The neutral (cold-start) vector.
    #[must_use]
    pub fn neutral() -> Self {
        PreferenceVector { scores: vec![0.0; CATEGORY_COUNT as usize] }
    }

    /// The preference for one category, in `[-1, 1]`.
    #[must_use]
    pub fn score(&self, category: CategoryId) -> f64 {
        self.scores[category.0 as usize]
    }

    /// Categories sorted by descending preference.
    #[must_use]
    pub fn ranked(&self) -> Vec<(CategoryId, f64)> {
        let mut out: Vec<(CategoryId, f64)> =
            (0..CATEGORY_COUNT).map(|c| (CategoryId(c), self.scores[c as usize])).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// True when every category is exactly neutral.
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.scores.iter().all(|&s| s == 0.0)
    }
}

/// Decayed per-category accumulator (raw, pre-squash).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct DecayedSum {
    value: f64,
    last: TimePoint,
}

/// The feedbacks DB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedbackStore {
    /// Raw navigation log per user (append order = time order expected
    /// from the client, but not enforced).
    log: HashMap<UserId, Vec<FeedbackEvent>>,
    /// Decayed per-(user, category) accumulators.
    sums: HashMap<UserId, Vec<DecayedSum>>,
    /// Preference half-life.
    half_life: TimeSpan,
}

impl Default for FeedbackStore {
    fn default() -> Self {
        FeedbackStore::new(TimeSpan::hours(24 * 14))
    }
}

impl FeedbackStore {
    /// Creates a store whose preference signal halves every
    /// `half_life`.
    ///
    /// # Panics
    /// Panics on a zero half-life.
    #[must_use]
    pub fn new(half_life: TimeSpan) -> Self {
        assert!(!half_life.is_zero(), "half-life must be positive");
        FeedbackStore { log: HashMap::new(), sums: HashMap::new(), half_life }
    }

    fn decay_factor(&self, from: TimePoint, to: TimePoint) -> f64 {
        let dt = to.since(from).as_seconds() as f64;
        0.5f64.powf(dt / self.half_life.as_seconds() as f64)
    }

    /// Records one event and updates the decayed accumulator.
    pub fn record(&mut self, event: FeedbackEvent) {
        self.log.entry(event.user).or_default().push(event);
        let half_life_s = self.half_life.as_seconds() as f64;
        let sums = self
            .sums
            .entry(event.user)
            .or_insert_with(|| vec![DecayedSum::default(); CATEGORY_COUNT as usize]);
        let slot = &mut sums[event.category.0 as usize];
        let dt = event.time.since(slot.last).as_seconds() as f64;
        slot.value = slot.value * 0.5f64.powf(dt / half_life_s) + event.kind.weight();
        slot.last = slot.last.max(event.time);
    }

    /// The user's raw navigation log (chronological as recorded).
    #[must_use]
    pub fn events(&self, user: UserId) -> &[FeedbackEvent] {
        self.log.get(&user).map_or(&[], Vec::as_slice)
    }

    /// Number of events recorded for `user`.
    #[must_use]
    pub fn event_count(&self, user: UserId) -> usize {
        self.log.get(&user).map_or(0, Vec::len)
    }

    /// The user's preference vector as of `now`. Cold-start users get
    /// the neutral vector.
    #[must_use]
    // lint: allow(reach-hash-iter) — `sums` binds one user's Vec of decayed sums, not the map itself
    pub fn preferences(&self, user: UserId, now: TimePoint) -> PreferenceVector {
        let Some(sums) = self.sums.get(&user) else {
            return PreferenceVector::neutral();
        };
        let scores =
            sums.iter().map(|s| (s.value * self.decay_factor(s.last, now)).tanh()).collect();
        PreferenceVector { scores }
    }

    /// Users with at least one event.
    #[must_use]
    // lint: allow(reach-hash-iter) — user ids are sorted before return
    pub fn known_users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.log.keys().copied().collect();
        users.sort_unstable();
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WINE: CategoryId = CategoryId(8);
    const FOOTBALL: CategoryId = CategoryId(5);

    fn ev(user: u64, cat: CategoryId, kind: FeedbackKind, t: TimePoint) -> FeedbackEvent {
        FeedbackEvent { user: UserId(user), clip: None, category: cat, kind, time: t }
    }

    #[test]
    fn likes_raise_skips_lower() {
        let mut store = FeedbackStore::default();
        let t = TimePoint::at(0, 9, 0, 0);
        store.record(ev(1, WINE, FeedbackKind::Like, t));
        store.record(ev(1, FOOTBALL, FeedbackKind::Skip, t));
        let prefs = store.preferences(UserId(1), t);
        assert!(prefs.score(WINE) > 0.5);
        assert!(prefs.score(FOOTBALL) < -0.3);
        assert_eq!(prefs.score(CategoryId(0)), 0.0);
    }

    #[test]
    fn cold_start_is_neutral() {
        let store = FeedbackStore::default();
        assert!(store.preferences(UserId(99), TimePoint::EPOCH).is_neutral());
    }

    #[test]
    fn preferences_decay_towards_neutral() {
        let mut store = FeedbackStore::new(TimeSpan::hours(24));
        let t0 = TimePoint::at(0, 9, 0, 0);
        store.record(ev(1, WINE, FeedbackKind::Like, t0));
        let fresh = store.preferences(UserId(1), t0).score(WINE);
        let later = store.preferences(UserId(1), t0.advance(TimeSpan::hours(24))).score(WINE);
        let much_later = store.preferences(UserId(1), t0.advance(TimeSpan::hours(240))).score(WINE);
        assert!(fresh > later && later > much_later);
        assert!(much_later > 0.0 && much_later < 0.01);
    }

    #[test]
    fn repeated_signals_accumulate_but_saturate() {
        let mut store = FeedbackStore::default();
        let mut t = TimePoint::at(0, 9, 0, 0);
        for _ in 0..3 {
            store.record(ev(1, WINE, FeedbackKind::ListenedThrough, t));
            t = t.advance(TimeSpan::minutes(20));
        }
        let three = store.preferences(UserId(1), t).score(WINE);
        for _ in 0..30 {
            store.record(ev(1, WINE, FeedbackKind::ListenedThrough, t));
            t = t.advance(TimeSpan::minutes(20));
        }
        let many = store.preferences(UserId(1), t).score(WINE);
        assert!(many > three);
        assert!(many <= 1.0, "tanh keeps scores bounded: {many}");
    }

    #[test]
    fn recent_dislike_outweighs_old_likes() {
        let mut store = FeedbackStore::new(TimeSpan::hours(24));
        let t0 = TimePoint::at(0, 9, 0, 0);
        // Two likes long ago…
        store.record(ev(1, FOOTBALL, FeedbackKind::Like, t0));
        store.record(ev(1, FOOTBALL, FeedbackKind::Like, t0.advance(TimeSpan::hours(1))));
        // …then ten days of silence and a dislike now.
        let now = t0.advance(TimeSpan::hours(240));
        store.record(ev(1, FOOTBALL, FeedbackKind::Dislike, now));
        assert!(store.preferences(UserId(1), now).score(FOOTBALL) < 0.0);
    }

    #[test]
    fn partial_listen_scales_with_fraction() {
        let mut store = FeedbackStore::default();
        let t = TimePoint::at(0, 9, 0, 0);
        store.record(ev(1, WINE, FeedbackKind::PartialListen(0.9), t));
        store.record(ev(2, WINE, FeedbackKind::PartialListen(0.1), t));
        let big = store.preferences(UserId(1), t).score(WINE);
        let small = store.preferences(UserId(2), t).score(WINE);
        assert!(big > small && small > 0.0);
    }

    #[test]
    fn ranked_orders_categories() {
        let mut store = FeedbackStore::default();
        let t = TimePoint::at(0, 9, 0, 0);
        store.record(ev(1, WINE, FeedbackKind::Like, t));
        store.record(ev(1, CategoryId(7), FeedbackKind::ListenedThrough, t));
        store.record(ev(1, FOOTBALL, FeedbackKind::Dislike, t));
        let ranked = store.preferences(UserId(1), t).ranked();
        assert_eq!(ranked[0].0, WINE);
        assert_eq!(ranked[1].0, CategoryId(7));
        assert_eq!(ranked.last().unwrap().0, FOOTBALL);
        assert_eq!(ranked.len(), 30);
    }

    #[test]
    fn log_and_known_users() {
        let mut store = FeedbackStore::default();
        let t = TimePoint::at(0, 9, 0, 0);
        store.record(ev(3, WINE, FeedbackKind::Like, t));
        store.record(ev(1, WINE, FeedbackKind::Skip, t));
        store.record(ev(3, FOOTBALL, FeedbackKind::Skip, t));
        assert_eq!(store.event_count(UserId(3)), 2);
        assert_eq!(store.events(UserId(1)).len(), 1);
        assert_eq!(store.known_users(), vec![UserId(1), UserId(3)]);
    }

    #[test]
    fn weights_have_expected_signs() {
        assert!(FeedbackKind::Like.weight() > 0.0);
        assert!(FeedbackKind::ListenedThrough.weight() > 0.0);
        assert!(FeedbackKind::Skip.weight() < 0.0);
        assert!(FeedbackKind::Dislike.weight() < 0.0);
        assert!(FeedbackKind::Like.is_explicit());
        assert!(!FeedbackKind::Skip.is_explicit());
    }
}
