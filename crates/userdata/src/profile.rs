//! The profiles DB: demographic details.

use pphcr_catalog::ServiceIndex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user:{}", self.0)
    }
}

/// Coarse age band (the only demographic granularity the prototype
/// needs; finer detail would be privacy surface without recommender
/// value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgeBand {
    /// Under 25.
    Young,
    /// 25–44.
    Adult,
    /// 45–64.
    Middle,
    /// 65 and over.
    Senior,
}

/// A listener's profile record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// The listener's id.
    pub id: UserId,
    /// Display name.
    pub name: String,
    /// Age band.
    pub age_band: AgeBand,
    /// The service the listener usually tunes to.
    pub favourite_service: ServiceIndex,
}

/// The profiles DB.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileStore {
    profiles: HashMap<UserId, UserProfile>,
}

impl ProfileStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        ProfileStore::default()
    }

    /// Registers or updates a profile.
    pub fn upsert(&mut self, profile: UserProfile) {
        self.profiles.insert(profile.id, profile);
    }

    /// Looks a profile up.
    #[must_use]
    pub fn get(&self, id: UserId) -> Option<&UserProfile> {
        self.profiles.get(&id)
    }

    /// Number of registered listeners.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when no listener is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Iterates over all profiles (unspecified order).
    // lint: allow(reach-hash-iter) — the only commit-path caller (snapshot encode_users) sorts by user id
    pub fn iter(&self) -> impl Iterator<Item = &UserProfile> {
        self.profiles.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lilly() -> UserProfile {
        UserProfile {
            id: UserId(1),
            name: "Lilly".into(),
            age_band: AgeBand::Young,
            favourite_service: ServiceIndex(2),
        }
    }

    #[test]
    fn upsert_and_get() {
        let mut store = ProfileStore::new();
        store.upsert(lilly());
        assert_eq!(store.get(UserId(1)).unwrap().name, "Lilly");
        assert!(store.get(UserId(2)).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn upsert_replaces() {
        let mut store = ProfileStore::new();
        store.upsert(lilly());
        let mut updated = lilly();
        updated.favourite_service = ServiceIndex(5);
        store.upsert(updated);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(UserId(1)).unwrap().favourite_service, ServiceIndex(5));
    }
}
