//! Listening-session logs.
//!
//! The feedbacks DB holds per-item events; the *session* log holds the
//! unit the dashboard and the evaluation reason about: one continuous
//! listening spell on one service — when it started and ended, what
//! played, how often the listener skipped, and whether the session
//! ended in a channel surf (the outcome PPHCR exists to prevent).

use crate::profile::UserId;
use pphcr_audio::ClipId;
use pphcr_catalog::ServiceIndex;
use pphcr_geo::{TimePoint, TimeSpan};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionEnd {
    /// The listener stopped / closed the app.
    Stopped,
    /// The listener changed to another service (channel surf).
    Surfed {
        /// The service surfed to.
        to: ServiceIndex,
    },
    /// Still in progress.
    Open,
}

/// One listening session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ListeningSession {
    /// The listener.
    pub user: UserId,
    /// The tuned service.
    pub service: ServiceIndex,
    /// Session start.
    pub started: TimePoint,
    /// Session end (equals `started` while open).
    pub ended: TimePoint,
    /// Clips played (in order).
    pub clips_played: Vec<ClipId>,
    /// Skip presses.
    pub skips: u32,
    /// Explicit likes.
    pub likes: u32,
    /// How the session ended.
    pub end: SessionEnd,
}

impl ListeningSession {
    /// Session length.
    #[must_use]
    pub fn duration(&self) -> TimeSpan {
        self.ended.since(self.started)
    }
}

/// The session log: an open session per user plus the closed history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionStore {
    open: HashMap<UserId, ListeningSession>,
    closed: Vec<ListeningSession>,
}

impl SessionStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        SessionStore::default()
    }

    /// Starts a session; an already-open one for the user is closed as
    /// [`SessionEnd::Stopped`] first.
    pub fn start(&mut self, user: UserId, service: ServiceIndex, now: TimePoint) {
        self.close(user, now, SessionEnd::Stopped);
        self.open.insert(
            user,
            ListeningSession {
                user,
                service,
                started: now,
                ended: now,
                clips_played: Vec::new(),
                skips: 0,
                likes: 0,
                end: SessionEnd::Open,
            },
        );
    }

    /// Records a clip start in the user's open session (no-op without
    /// one — robustness over strictness for late events).
    pub fn clip_played(&mut self, user: UserId, clip: ClipId, now: TimePoint) {
        if let Some(s) = self.open.get_mut(&user) {
            s.clips_played.push(clip);
            s.ended = s.ended.max(now);
        }
    }

    /// Records a skip press.
    pub fn skip(&mut self, user: UserId, now: TimePoint) {
        if let Some(s) = self.open.get_mut(&user) {
            s.skips += 1;
            s.ended = s.ended.max(now);
        }
    }

    /// Records a like press.
    pub fn like(&mut self, user: UserId, now: TimePoint) {
        if let Some(s) = self.open.get_mut(&user) {
            s.likes += 1;
            s.ended = s.ended.max(now);
        }
    }

    /// Closes the user's open session (no-op without one).
    pub fn close(&mut self, user: UserId, now: TimePoint, end: SessionEnd) {
        if let Some(mut s) = self.open.remove(&user) {
            s.ended = s.ended.max(now);
            s.end = end;
            self.closed.push(s);
        }
    }

    /// The user's open session, if any.
    #[must_use]
    pub fn open_session(&self, user: UserId) -> Option<&ListeningSession> {
        self.open.get(&user)
    }

    /// Closed sessions of one user, oldest first.
    #[must_use]
    pub fn history(&self, user: UserId) -> Vec<&ListeningSession> {
        self.closed.iter().filter(|s| s.user == user).collect()
    }

    /// Total closed sessions.
    #[must_use]
    pub fn closed_count(&self) -> usize {
        self.closed.len()
    }

    /// Open sessions in deterministic order (sorted by user id), for
    /// persistence.
    #[must_use]
    // lint: allow(reach-hash-iter) — result fully sorted by user id before return
    pub fn export_open(&self) -> Vec<&ListeningSession> {
        let mut open: Vec<&ListeningSession> = self.open.values().collect();
        open.sort_by_key(|s| s.user);
        open
    }

    /// Closed sessions in log order, for persistence.
    #[must_use]
    pub fn export_closed(&self) -> &[ListeningSession] {
        &self.closed
    }

    /// Rebuilds the store from persisted sessions: `open` holds at most
    /// one session per user, `closed` is the history in log order.
    #[must_use]
    // lint: allow(reach-hash-iter) — `open` here is the persisted Vec in snapshot order; it is collected into a map keyed by user
    pub fn restore(open: Vec<ListeningSession>, closed: Vec<ListeningSession>) -> Self {
        SessionStore { open: open.into_iter().map(|s| (s.user, s)).collect(), closed }
    }

    /// The fraction of a user's closed sessions that ended in a surf —
    /// the paper's "propensity to channel-surf" as a per-listener
    /// statistic.
    #[must_use]
    pub fn surf_propensity(&self, user: UserId) -> f64 {
        let hist = self.history(user);
        if hist.is_empty() {
            return 0.0;
        }
        let surfed = hist.iter().filter(|s| matches!(s.end, SessionEnd::Surfed { .. })).count();
        surfed as f64 / hist.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: UserId = UserId(1);

    #[test]
    fn session_lifecycle() {
        let mut store = SessionStore::new();
        let t0 = TimePoint::at(0, 8, 0, 0);
        store.start(U, ServiceIndex(0), t0);
        store.clip_played(U, ClipId(1), t0.advance(TimeSpan::minutes(2)));
        store.skip(U, t0.advance(TimeSpan::minutes(3)));
        store.clip_played(U, ClipId(2), t0.advance(TimeSpan::minutes(3)));
        store.like(U, t0.advance(TimeSpan::minutes(5)));
        store.close(U, t0.advance(TimeSpan::minutes(20)), SessionEnd::Stopped);
        let hist = store.history(U);
        assert_eq!(hist.len(), 1);
        let s = hist[0];
        assert_eq!(s.clips_played, vec![ClipId(1), ClipId(2)]);
        assert_eq!(s.skips, 1);
        assert_eq!(s.likes, 1);
        assert_eq!(s.duration(), TimeSpan::minutes(20));
        assert_eq!(s.end, SessionEnd::Stopped);
        assert!(store.open_session(U).is_none());
    }

    #[test]
    fn restart_closes_previous() {
        let mut store = SessionStore::new();
        let t0 = TimePoint::at(0, 8, 0, 0);
        store.start(U, ServiceIndex(0), t0);
        store.start(U, ServiceIndex(2), t0.advance(TimeSpan::minutes(10)));
        assert_eq!(store.closed_count(), 1);
        assert_eq!(store.history(U)[0].end, SessionEnd::Stopped);
        assert_eq!(store.open_session(U).unwrap().service, ServiceIndex(2));
    }

    #[test]
    fn surf_propensity_statistic() {
        let mut store = SessionStore::new();
        let t0 = TimePoint::at(0, 8, 0, 0);
        for i in 0..4u64 {
            let start = t0.advance(TimeSpan::hours(i));
            store.start(U, ServiceIndex(0), start);
            let end = start.advance(TimeSpan::minutes(30));
            if i == 0 {
                store.close(U, end, SessionEnd::Surfed { to: ServiceIndex(3) });
            } else {
                store.close(U, end, SessionEnd::Stopped);
            }
        }
        assert!((store.surf_propensity(U) - 0.25).abs() < 1e-12);
        assert_eq!(store.surf_propensity(UserId(99)), 0.0);
    }

    #[test]
    fn events_without_open_session_are_ignored() {
        let mut store = SessionStore::new();
        let t = TimePoint::at(0, 9, 0, 0);
        store.clip_played(U, ClipId(1), t);
        store.skip(U, t);
        store.like(U, t);
        store.close(U, t, SessionEnd::Stopped);
        assert_eq!(store.closed_count(), 0);
        assert!(store.history(U).is_empty());
    }
}
