//! The tracking data DB.
//!
//! Stand-in for the paper's "`PostGIS` based spatial DB with the
//! listener's geographical information": per-user GPS traces plus a
//! grid spatial index for the dashboard's map queries (Fig. 5), and the
//! periodic compaction job that turns raw fixes into each user's
//! [`MobilityModel`].

use crate::profile::UserId;
use pphcr_geo::grid::GridIndex;
use pphcr_geo::{BoundingBox, GeoPoint, LocalProjection, TimePoint};
use pphcr_trajectory::fix::{GpsFix, Trace};
use pphcr_trajectory::model::{MobilityModel, ModelConfig};
use std::collections::HashMap;

/// Why a tracking query could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackingError {
    /// The user has no recorded fixes, so no mobility model exists.
    NoFixes(UserId),
}

impl std::fmt::Display for TrackingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrackingError::NoFixes(user) => {
                write!(f, "user {} has no recorded fixes", user.0)
            }
        }
    }
}

impl std::error::Error for TrackingError {}

/// The tracking store.
#[derive(Debug)]
pub struct TrackingStore {
    projection: LocalProjection,
    traces: HashMap<UserId, Trace>,
    /// All fixes of all users, for dashboard map windows.
    index: GridIndex<(UserId, TimePoint)>,
    /// Cached compact models, invalidated by new fixes.
    models: HashMap<UserId, (usize, MobilityModel)>,
    config: ModelConfig,
    dropped_invalid: u64,
}

impl TrackingStore {
    /// Creates a store projecting around `origin` with the default
    /// compaction configuration.
    #[must_use]
    pub fn new(origin: GeoPoint) -> Self {
        TrackingStore::with_config(origin, ModelConfig::default())
    }

    /// Creates a store with an explicit compaction configuration.
    #[must_use]
    pub fn with_config(origin: GeoPoint, config: ModelConfig) -> Self {
        TrackingStore {
            projection: LocalProjection::new(origin),
            traces: HashMap::new(),
            index: GridIndex::new(500.0),
            models: HashMap::new(),
            config,
            dropped_invalid: 0,
        }
    }

    /// The store's projection (shared with repository and recommender).
    #[must_use]
    pub fn projection(&self) -> &LocalProjection {
        &self.projection
    }

    /// Ingests one fix from a device. Invalid fixes (NaN coordinates,
    /// negative speed — GPS cold-start garbage) are counted and
    /// dropped.
    pub fn record(&mut self, user: UserId, fix: GpsFix) {
        if !fix.point.is_valid() || !fix.speed_mps.is_finite() || fix.speed_mps < 0.0 {
            self.dropped_invalid += 1;
            return;
        }
        self.traces.entry(user).or_default().push(fix);
        self.index.insert(self.projection.project(fix.point), (user, fix.time));
        self.models.remove(&user);
    }

    /// Number of invalid fixes dropped so far.
    #[must_use]
    pub fn dropped_invalid(&self) -> u64 {
        self.dropped_invalid
    }

    /// Restores the invalid-fix counter after a snapshot reload.
    /// Stored fixes are re-recorded through [`TrackingStore::record`]
    /// (they were validated on first ingest, so none are re-dropped),
    /// but the drop counter itself is history that cannot be rebuilt
    /// from surviving state.
    pub fn restore_dropped_invalid(&mut self, dropped: u64) {
        self.dropped_invalid = dropped;
    }

    /// The user's full raw trace.
    #[must_use]
    pub fn trace(&self, user: UserId) -> Option<&Trace> {
        self.traces.get(&user)
    }

    /// Total stored fixes across users.
    #[must_use]
    pub fn total_fixes(&self) -> usize {
        self.traces.values().map(Trace::len).sum()
    }

    /// Stored fixes for one user. Monotonically increasing per user, so
    /// it doubles as a cheap revision counter for caches keyed on a
    /// user's mobility state.
    #[must_use]
    pub fn fix_count(&self, user: UserId) -> usize {
        self.traces.get(&user).map_or(0, Trace::len)
    }

    /// The user's most recent `n` fixes (oldest first).
    #[must_use]
    pub fn recent_fixes(&self, user: UserId, n: usize) -> Vec<GpsFix> {
        self.traces
            .get(&user)
            .map(|t| {
                let fixes = t.fixes();
                fixes[fixes.len().saturating_sub(n)..].to_vec()
            })
            .unwrap_or_default()
    }

    /// Fixes of any user inside a map window — the dashboard's Fig. 5
    /// query. Returns `(user, time, position)` tuples.
    #[must_use]
    pub fn fixes_in(&self, window: BoundingBox) -> Vec<(UserId, TimePoint, GeoPoint)> {
        let min = self.projection.project(GeoPoint::new(window.min_lat, window.min_lon));
        let max = self.projection.project(GeoPoint::new(window.max_lat, window.max_lon));
        self.index
            .query_rect(min, max)
            .into_iter()
            .map(|(pos, (user, time))| (user, time, self.projection.unproject(pos)))
            .filter(|(_, _, p)| window.contains(*p))
            .collect()
    }

    /// The user's compact mobility model, rebuilt only when new fixes
    /// arrived since the last build (the paper's "periodically process
    /// and simplify" job, run on demand).
    ///
    /// # Errors
    /// [`TrackingError::NoFixes`] for a user without any recorded fix —
    /// previously this silently built an empty model; an engine asking
    /// for the mobility of an untracked listener is a caller bug worth
    /// surfacing.
    pub fn mobility_model(&mut self, user: UserId) -> Result<&MobilityModel, TrackingError> {
        let fix_count = match self.traces.get(&user) {
            Some(t) => t.len(),
            None => return Err(TrackingError::NoFixes(user)),
        };
        let needs_build = match self.models.get(&user) {
            Some((count, _)) => *count != fix_count,
            None => true,
        };
        if needs_build {
            let trace = self.traces.get(&user).cloned().unwrap_or_default();
            let model = MobilityModel::build(&trace, &self.projection, &self.config);
            self.models.insert(user, (fix_count, model));
        }
        match self.models.get(&user) {
            Some((_, model)) => Ok(model),
            None => Err(TrackingError::NoFixes(user)),
        }
    }

    /// The compaction configuration models are built with — exposed so
    /// a parallel pipeline can run [`MobilityModel::build`] off-thread
    /// with the exact parameters [`TrackingStore::mobility_model`]
    /// would use.
    #[must_use]
    pub fn model_config(&self) -> &ModelConfig {
        &self.config
    }

    /// The user's cached mobility model, only when it is current (built
    /// from every stored fix). A read-only twin of
    /// [`TrackingStore::mobility_model`] for pipelines that must not
    /// hold `&mut self`: a stale or missing cache returns `None` and
    /// the caller rebuilds off-thread from [`TrackingStore::trace`].
    #[must_use]
    pub fn cached_model(&self, user: UserId) -> Option<&MobilityModel> {
        let fix_count = self.traces.get(&user)?.len();
        match self.models.get(&user) {
            Some((count, model)) if *count == fix_count => Some(model),
            _ => None,
        }
    }

    /// Installs a model built off-thread as the user's cached model,
    /// stamped with the current fix count. The model must have been
    /// built from the user's full trace with [`Self::model_config`] —
    /// [`MobilityModel::build`] is pure, so such a model is
    /// indistinguishable from one built by
    /// [`TrackingStore::mobility_model`] itself.
    pub fn install_model(&mut self, user: UserId, model: MobilityModel) {
        let fix_count = self.fix_count(user);
        self.models.insert(user, (fix_count, model));
    }

    /// Users with at least one fix.
    #[must_use]
    // lint: allow(reach-hash-iter) — user ids are sorted before return
    pub fn known_users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.traces.keys().copied().collect();
        users.sort_unstable();
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphcr_geo::TimeSpan;

    const TORINO: GeoPoint = GeoPoint { lat: 45.0703, lon: 7.6869 };

    fn store_with_drive() -> TrackingStore {
        let mut s = TrackingStore::new(TORINO);
        for i in 0..60u64 {
            s.record(
                UserId(1),
                GpsFix::new(TORINO.destination(90.0, i as f64 * 200.0), TimePoint(i * 30), 7.0),
            );
        }
        s
    }

    #[test]
    fn record_and_trace() {
        let s = store_with_drive();
        assert_eq!(s.trace(UserId(1)).unwrap().len(), 60);
        assert!(s.trace(UserId(2)).is_none());
        assert_eq!(s.total_fixes(), 60);
        assert_eq!(s.known_users(), vec![UserId(1)]);
    }

    #[test]
    fn invalid_fixes_dropped() {
        let mut s = TrackingStore::new(TORINO);
        s.record(UserId(1), GpsFix::new(GeoPoint::new(f64::NAN, 7.0), TimePoint(0), 1.0));
        s.record(UserId(1), GpsFix::new(TORINO, TimePoint(1), -5.0));
        s.record(UserId(1), GpsFix::new(TORINO, TimePoint(2), 1.0));
        assert_eq!(s.dropped_invalid(), 2);
        assert_eq!(s.total_fixes(), 1);
    }

    #[test]
    fn recent_fixes_tail() {
        let s = store_with_drive();
        let recent = s.recent_fixes(UserId(1), 5);
        assert_eq!(recent.len(), 5);
        assert_eq!(recent[4].time, TimePoint(59 * 30));
        assert_eq!(recent[0].time, TimePoint(55 * 30));
        // Asking for more than stored returns all.
        assert_eq!(s.recent_fixes(UserId(1), 500).len(), 60);
        assert!(s.recent_fixes(UserId(9), 5).is_empty());
    }

    #[test]
    fn map_window_query_finds_users() {
        let s = store_with_drive();
        // Window around the first kilometre of the drive.
        let window = BoundingBox::from_points(&[
            TORINO.destination(90.0, -100.0),
            TORINO.destination(90.0, 1_000.0),
        ])
        .unwrap()
        .padded(0.001);
        let hits = s.fixes_in(window);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|(u, _, p)| *u == UserId(1) && window.contains(*p)));
        // A window over the sea finds nothing.
        let empty = BoundingBox::from_point(GeoPoint::new(40.0, 10.0)).padded(0.01);
        assert!(s.fixes_in(empty).is_empty());
    }

    #[test]
    fn mobility_model_caches_until_new_fix() {
        let mut s = TrackingStore::new(TORINO);
        let work = TORINO.destination(90.0, 8_000.0);
        // Two commuting days.
        for day in 0..2u64 {
            let d0 = TimePoint::at(day, 0, 0, 0);
            for i in 0..80u64 {
                s.record(UserId(1), GpsFix::new(TORINO, d0.advance(TimeSpan::minutes(i * 5)), 0.1));
            }
            for i in 0..30u64 {
                let frac = i as f64 / 29.0;
                s.record(
                    UserId(1),
                    GpsFix::new(
                        TORINO.destination(90.0, frac * 8_000.0),
                        d0.advance(TimeSpan::hours(8)).advance(TimeSpan::seconds(i * 40)),
                        7.0,
                    ),
                );
            }
            for i in 0..60u64 {
                s.record(
                    UserId(1),
                    GpsFix::new(work, d0.advance(TimeSpan::minutes(540 + i * 8)), 0.1),
                );
            }
        }
        let stays = s.mobility_model(UserId(1)).expect("has fixes").stay_points.len();
        assert!(stays >= 2, "home and work expected, got {stays}");
        // Cached: building again without new fixes is the same object
        // (checked via pointer equality of the stored model).
        let p1 = std::ptr::addr_of!(*s.mobility_model(UserId(1)).expect("has fixes"));
        let p2 = std::ptr::addr_of!(*s.mobility_model(UserId(1)).expect("has fixes"));
        assert_eq!(p1, p2);
        // New fix invalidates.
        s.record(UserId(1), GpsFix::new(TORINO, TimePoint::at(3, 0, 0, 0), 0.1));
        assert!(s.mobility_model(UserId(1)).is_ok());
    }

    #[test]
    fn cold_user_is_a_typed_error_not_a_panic() {
        let mut s = TrackingStore::new(TORINO);
        // Regression for the `.expect("just inserted")` this replaced:
        // an untracked user must surface as a typed error, not an
        // invisible empty model (and certainly not a panic).
        assert!(matches!(s.mobility_model(UserId(42)), Err(TrackingError::NoFixes(UserId(42)))));
        // One valid fix is enough to make the query answerable.
        s.record(UserId(42), GpsFix::new(TORINO, TimePoint::at(0, 8, 0, 0), 1.0));
        let model = s.mobility_model(UserId(42)).expect("has a fix now");
        assert!(model.trips.is_empty());
    }
}
