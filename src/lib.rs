//! # PPHCR — Proactive Personalized Hybrid Content Radio
//!
//! A from-scratch Rust reproduction of *Context-Aware Proactive
//! Personalization of Linear Audio Content* (Casagranda, Sapino,
//! Candan — EDBT 2017): a platform that enriches linear broadcast radio
//! by proactively replacing parts of the live stream with audio clips
//! relevant to the listener's context — location, trajectory, speed,
//! time and learned preferences.
//!
//! This crate is the facade: it re-exports the platform crates under
//! one roof. Start with [`core::Engine`] for the integrated platform,
//! or use the layers directly:
//!
//! * [`geo`] — coordinates, spatial index, road networks,
//! * [`trajectory`] — DBSCAN staying points, RDP simplification,
//!   destination & ΔT prediction,
//! * [`audio`] — deterministic PCM substrate: splicing, time-shift,
//! * [`nlp`] — tokenizer, naive Bayes classifier, simulated ASR,
//! * [`catalog`] — services, EPG, clip metadata, content repository,
//! * [`userdata`] — profiles, feedback learning, tracking store,
//! * [`recommender`] — compound scoring, the proactivity model, the ΔT
//!   slot scheduler,
//! * [`obs`] — deterministic counters, histograms, spans and the
//!   decision trace,
//! * [`core`] — the engine, replacement planner, player, injection,
//!   network-cost model, dashboard,
//! * [`sim`] — the synthetic world and the experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use pphcr::core::{Engine, EngineConfig};
//! use pphcr::catalog::{CategoryId, ClipKind, ServiceIndex};
//! use pphcr::geo::{TimePoint, TimeSpan};
//! use pphcr::userdata::{AgeBand, UserId, UserProfile};
//!
//! let mut engine = Engine::new(EngineConfig::default());
//! let now = TimePoint::at(0, 9, 0, 0);
//! engine.register_user(
//!     UserProfile {
//!         id: UserId(1),
//!         name: "Greg".into(),
//!         age_band: AgeBand::Adult,
//!         favourite_service: ServiceIndex(0),
//!     },
//!     now,
//! );
//! let (clip, _) = engine.ingest_clip(
//!     "Tech news",
//!     ClipKind::Podcast,
//!     TimeSpan::minutes(5),
//!     now,
//!     None,
//!     &[],
//!     Some(CategoryId::from_name("technology").unwrap()),
//! );
//! // Greg skips the live football talk: the platform reacts with a
//! // personalized clip instead of losing him to another station.
//! let events = engine.skip(UserId(1), now);
//! assert!(!events.is_empty());
//! assert!(engine.heard(UserId(1)).contains(&clip));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use pphcr_audio as audio;
pub use pphcr_catalog as catalog;
pub use pphcr_core as core;
pub use pphcr_geo as geo;
pub use pphcr_nlp as nlp;
pub use pphcr_obs as obs;
pub use pphcr_recommender as recommender;
pub use pphcr_sim as sim;
pub use pphcr_trajectory as trajectory;
pub use pphcr_userdata as userdata;
